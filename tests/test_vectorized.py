"""Differential tests for the vectorized fast paths.

Every numpy kernel added by the vectorization PR is pinned to its slow,
independently validated reference: the array SMAWK against the callable
recursive SMAWK, the batched CSR Dijkstra and the corner-graph leaf
solver against the per-source heapq Dijkstra, and the batched query APIs
against their scalar counterparts — all on randomized scenes from
``workloads.generators``.
"""

from heapq import heappop, heappush

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allpairs import ParallelEngine
from repro.core.api import ShortestPathIndex
from repro.core.baseline import GridOracle, clear_l1_block, corner_graph_matrix
from repro.errors import MongeError
from repro.monge.matrix import MongeFlag, is_monge
from repro.monge.multiply import minplus_auto, minplus_monge, minplus_naive
from repro.monge.smawk import smawk_row_minima, smawk_row_minima_array
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects, random_free_points

FAST = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _reference_sssp(graph, src_id):
    """The seed's per-source heapq Dijkstra over ``neighbors()``."""
    dist = np.full(graph.num_nodes, np.inf)
    dist[src_id] = 0
    heap = [(0, src_id)]
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heappush(heap, (nd, v))
    return dist


def _random_monge(rows, cols, rng):
    xs = np.sort(rng.integers(0, 4 * max(rows, 2), rows))
    ys = np.sort(rng.integers(0, 4 * max(cols, 2), cols))
    return np.abs(xs[:, None] - ys[None, :]).astype(float)


class TestArraySmawk:
    @given(
        st.integers(1, 8),  # offset rows
        st.integers(1, 9),  # inner
        st.integers(1, 9),  # output cols
        st.integers(0, 10**6),
    )
    @FAST
    def test_matches_callable_smawk(self, al, inner, bc, seed):
        rng = np.random.default_rng(seed)
        b = _random_monge(inner, bc, rng)
        a = rng.integers(0, 50, (al, inner)).astype(float)
        # Lemma 4 padding: the inner dimension pads consistently (∞ suffix
        # columns of a matched by ∞ suffix rows of b), the output columns
        # pad on the right of b, and whole a-rows may be padding rows
        if rng.random() < 0.4:
            k0 = int(rng.integers(0, inner))
            a[:, k0:] = np.inf
            b[k0:, :] = np.inf
        right_padded = rng.random() < 0.4
        if right_padded:
            b[:, int(rng.integers(0, bc)):] = np.inf
        if rng.random() < 0.4:
            a[int(rng.integers(0, al)), :] = np.inf
        arg = smawk_row_minima_array(a, b)
        assert arg.shape == (al, bc)
        # ground truth: the array kernel must find the true minima for
        # every padding shape
        dense = a[:, None, :] + b.T[None, :, :]
        assert np.array_equal(
            np.take_along_axis(dense, arg[:, :, None], axis=2)[:, :, 0],
            dense.min(axis=2),
        )
        if right_padded:
            # all-∞ output rows break total monotonicity; the recursive
            # callable SMAWK is only a valid reference without them (the
            # array kernel stays exact — see the brute-force check above)
            return
        for i in range(al):
            arow = a[i]
            ref = smawk_row_minima(
                list(range(bc)), list(range(inner)), lambda j, k: arow[k] + b[k, j]
            )
            for j in range(bc):
                assert arow[arg[i, j]] + b[arg[i, j], j] == arow[ref[j]] + b[ref[j], j]

    def test_rejects_empty_inner(self):
        with pytest.raises(ValueError):
            smawk_row_minima_array(np.zeros((2, 0)), np.zeros((0, 3)))

    def test_empty_rows_or_cols(self):
        assert smawk_row_minima_array(np.zeros((0, 2)), np.zeros((2, 3))).shape == (0, 3)
        assert smawk_row_minima_array(np.zeros((2, 2)), np.zeros((2, 0))).shape == (2, 0)

    @given(st.integers(1, 40), st.integers(0, 10**6))
    @FAST
    def test_minplus_engines_agree(self, m, seed):
        rng = np.random.default_rng(seed)
        a = _random_monge(m, m, rng)
        b = _random_monge(m, m, rng)
        arr = minplus_monge(a, b, PRAM(), check=False, engine="array")
        call = minplus_monge(a, b, PRAM(), check=False, engine="callable")
        naive = minplus_naive(a, b, PRAM())
        assert (arr == call).all()
        assert (arr == naive).all()


class TestMongeFlag:
    def test_certifies_once(self, monkeypatch):
        import repro.monge.matrix as matrix_mod

        b = _random_monge(8, 8, np.random.default_rng(0))
        flag = MongeFlag(b)
        calls = []
        real = matrix_mod.is_monge

        def spy(m, strict_finite=False):
            calls.append(1)
            return real(m, strict_finite)

        monkeypatch.setattr(matrix_mod, "is_monge", spy)
        assert flag.monge()
        assert flag.monge()
        assert len(calls) == 1  # second call answered from the flag

    def test_auto_uses_flag(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 30, (6, 6)).astype(float)
        b = MongeFlag(_random_monge(6, 6, rng))
        got = minplus_auto(a, b, PRAM())
        want = minplus_naive(a, b.array, PRAM())
        assert (got == want).all()
        assert b._monge is True  # certification memoised on the wrapper

    def test_flag_can_be_preset(self):
        b = _random_monge(5, 5, np.random.default_rng(1))
        assert MongeFlag(b, monge=True).monge()
        assert is_monge(MongeFlag(b))
        with pytest.raises(MongeError):
            # a preset False flag routes minplus_monge's check to failure
            minplus_monge(np.zeros((2, 5)), MongeFlag(b, monge=False), PRAM())


class TestBatchedDijkstra:
    @given(st.integers(1, 10), st.integers(0, 10**6))
    @FAST
    def test_block_matches_heapq_reference(self, n, seed):
        rects = random_disjoint_rects(n, seed=seed % 997)
        pts = random_free_points(rects, 6, seed=seed % 991)
        oracle = GridOracle(rects, pts)
        ids = [oracle.graph.node_id(p) for p in pts]
        block = oracle._sssp_block(ids)
        for row, pid in zip(block, ids):
            assert np.array_equal(row, _reference_sssp(oracle.graph, pid))

    def test_dist_matrix_rectangular_block(self):
        rects = random_disjoint_rects(5, seed=11)
        pts = random_free_points(rects, 8, seed=12)
        oracle = GridOracle(rects, pts)
        full = oracle.dist_matrix(pts)
        block = oracle.dist_matrix(pts[:3], pts[3:])
        assert np.array_equal(block, full[:3, 3:])

    def test_csr_roundtrip_neighbors(self):
        rects = random_disjoint_rects(6, seed=5)
        g = GridOracle(rects).graph
        indptr, indices, weights = g.csr()
        assert indptr[-1] == len(indices) == len(weights)
        for u in range(g.num_nodes):
            want = sorted(g.neighbors(u))
            got = sorted(
                zip(indices[indptr[u]:indptr[u + 1]], weights[indptr[u]:indptr[u + 1]])
            )
            assert [(v, w) for v, w in want] == [(int(v), int(w)) for v, w in got]

    def test_lru_cache_is_bounded(self):
        rects = random_disjoint_rects(4, seed=7)
        pts = random_free_points(rects, 9, seed=8)
        oracle = GridOracle(rects, pts, cache_cap=3)
        want = GridOracle(rects, pts).dist_matrix(pts)
        for i, p in enumerate(pts):
            for j, q in enumerate(pts):
                assert oracle.dist(p, q) == want[i, j]
            assert len(oracle._dist_cache) <= 3


class TestCornerGraphLeaf:
    @given(st.integers(1, 8), st.integers(0, 10**6))
    @FAST
    def test_matches_grid_oracle(self, c, seed):
        rects = random_disjoint_rects(c, seed=seed % 983)
        pts = list(
            dict.fromkeys(
                [v for r in rects for v in r.vertices]
                + random_free_points(rects, 10, seed=seed % 977, margin=25)
            )
        )
        want = GridOracle(rects, pts).dist_matrix(pts)
        got = corner_graph_matrix(rects, pts)
        assert np.array_equal(got, want)

    def test_no_obstacles_is_l1(self):
        pts = [(0, 0), (3, 5), (10, 1)]
        got = corner_graph_matrix([], pts)
        assert got[0, 1] == 8 and got[1, 2] == 11 and got[0, 2] == 11

    def test_clear_l1_block_blocked_pair(self):
        # a wall between the two points blocks both extreme L-paths
        rects = random_disjoint_rects(1, seed=0)
        r = rects[0]
        left = (r.xlo - 2, (r.ylo + r.yhi) // 2)
        right = (r.xhi + 2, (r.ylo + r.yhi) // 2)
        block = clear_l1_block([left], [right], rects)
        if r.yhi - r.ylo >= 2:  # the wall really separates the midline
            assert np.isinf(block[0, 0])
        assert clear_l1_block([left], [left], rects)[0, 0] == 0


class TestBatchedQueries:
    def _index(self, n=10, seed=3):
        rects = random_disjoint_rects(n, seed=seed)
        return ShortestPathIndex.build(rects), rects

    def test_lengths_matches_scalar(self):
        idx, rects = self._index()
        verts = idx.vertices()
        free = random_free_points(rects, 6, seed=4)
        pairs = (
            [(verts[i], verts[-1 - i]) for i in range(4)]
            + [(free[0], verts[0]), (free[1], free[2])]
        )
        got = idx.lengths(pairs)
        want = [idx.length(p, q) for p, q in pairs]
        assert got.tolist() == want

    def test_lengths_empty(self):
        idx, _ = self._index(n=4)
        assert idx.lengths([]).shape == (0,)

    def test_distance_index_batched_gathers(self):
        rects = random_disjoint_rects(8, seed=9)
        engine = ParallelEngine(rects, [], PRAM(), leaf_size=4)
        index = engine.build()
        pts = index.points[:6]
        sub = index.submatrix(pts)
        rect_block = index.submatrix(pts[:2], pts[2:])
        assert np.array_equal(rect_block, sub[:2, 2:])
        pairwise = index.lengths(pts[:3], pts[3:6])
        for k in range(3):
            assert pairwise[k] == index.length(pts[k], pts[3 + k])
