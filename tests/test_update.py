"""Incremental scene updates and zero-downtime rollover.

Three layers under test:

* engine — ``update_index`` repairs must be **byte-identical** to a cold
  rebuild of the mutated scene (root point order, exact integer matrix
  bytes, reported polylines) while actually reusing subtree work;
* store — ``SceneStore.swap``/``replace_source`` generations: atomic
  publish, pinned old generations retired until their pins drain,
  bounded ``pin``, the ``leaked_pins`` detector, collision-safe snapshot
  quarantine;
* cluster — the ``update`` protocol verb rolls a live 2-worker cluster
  to the next generation with no stale answers, including while a worker
  is being killed and respawned mid-rollover.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.core.crosscheck import check_update
from repro.errors import GeometryError, QueryError
from repro.pipeline import StageCache, build_index, update_index
from repro.scene import Scene, SceneDelta
from repro.serve import SceneStore
from repro.serve.snapshot import quarantine
from repro.workloads import random_disjoint_rects


def _roomy_cache() -> StageCache:
    # the default process cache (64 entries / 32 MB) cannot hold every
    # subtree entry of a mid-sized scene; reuse tests need headroom
    return StageCache(max_entries=8192, max_bytes=512 << 20)


def _scene(n: int, seed: int) -> Scene:
    return Scene.from_obstacles(random_disjoint_rects(n, seed=seed))


def _assert_byte_identical(repaired, cold):
    assert list(repaired.index.points) == list(cold.index.points)
    ma = np.asarray(repaired.index.matrix)
    mb = np.asarray(cold.index.matrix)
    assert ma.tobytes() == mb.tobytes()


class TestUpdateIndex:
    def test_delete_repair_is_byte_identical_and_reuses(self):
        scene = _scene(32, seed=5)
        cache = _roomy_cache()
        idx = build_index(scene, cache=cache, incremental=True)
        victim = scene.rects[len(scene.rects) // 2]
        repaired = update_index(idx, SceneDelta.delete(victim), cache=cache)
        cold = build_index(repaired.scene, cache=StageCache(64, 256 << 20))
        _assert_byte_identical(repaired, cold)
        rep = repaired.provenance["repair"]
        assert rep["ops"] == "0 inserts, 1 deletes"
        assert rep["old_scene_hash"] == scene.content_hash()
        assert rep["new_scene_hash"] == repaired.scene.content_hash()
        assert rep["reused_entries"] > 0
        assert 0.0 < rep["reused_fraction"] <= 1.0

    def test_insert_repair_is_byte_identical(self):
        scene = _scene(24, seed=9)
        cache = _roomy_cache()
        idx = build_index(scene, cache=cache, incremental=True)
        victim = scene.rects[3]
        mid = update_index(idx, SceneDelta.delete(victim), cache=cache)
        back = update_index(mid, SceneDelta.insert(victim), cache=cache)
        cold = build_index(back.scene, cache=StageCache(64, 256 << 20))
        _assert_byte_identical(back, cold)

    def test_paths_match_cold_rebuild(self):
        scene = _scene(20, seed=2)
        cache = _roomy_cache()
        idx = build_index(scene, cache=cache, incremental=True)
        repaired = update_index(idx, SceneDelta.delete(scene.rects[7]), cache=cache)
        cold = build_index(repaired.scene, cache=StageCache(64, 256 << 20))
        pts = repaired.index.points
        ma = np.asarray(repaired.index.matrix)
        checked = 0
        for i in range(0, len(pts), 7):
            j = len(pts) - 1 - i
            if j <= i or not np.isfinite(ma[i, j]):
                continue
            p, q = pts[i], pts[j]
            assert repaired.shortest_path(p, q) == cold.shortest_path(p, q)
            assert repaired.length(p, q) == cold.length(p, q)
            checked += 1
        assert checked >= 3

    def test_update_requires_attached_scene(self):
        scene = _scene(6, seed=1)
        idx = build_index(scene)
        idx.scene = None
        with pytest.raises(QueryError, match="no attached scene"):
            update_index(idx, SceneDelta.delete(scene.rects[0]))

    def test_update_rejects_non_delta(self):
        idx = build_index(_scene(6, seed=1))
        with pytest.raises(QueryError, match="SceneDelta"):
            update_index(idx, {"op": "delete"})

    def test_delete_missing_obstacle_is_one_line_error(self):
        scene = _scene(6, seed=3)
        idx = build_index(scene, cache=_roomy_cache(), incremental=True)
        from repro.geometry.primitives import Rect

        ghost = Rect(10**6, 10**6, 10**6 + 1, 10**6 + 1)
        with pytest.raises(GeometryError, match="not in the scene"):
            update_index(idx, SceneDelta.delete(ghost))

    def test_insert_duplicate_obstacle_is_one_line_error(self):
        scene = _scene(6, seed=3)
        idx = build_index(scene, cache=_roomy_cache(), incremental=True)
        with pytest.raises(GeometryError, match="already in the scene"):
            update_index(idx, SceneDelta.insert(scene.rects[0]))

    def test_modified_scene_never_reuses_parent_hashes(self):
        # satellite regression: apply_delta rebuilds from scratch, so a
        # repaired index can never inherit the parent's memoized hashes
        # or its content-addressed solve artifact
        scene = _scene(16, seed=4)
        edited = scene.apply_delta(SceneDelta.delete(scene.rects[0]))
        assert edited.content_hash() != scene.content_hash()
        assert edited.geometry_hash() != scene.geometry_hash()
        cache = _roomy_cache()
        idx = build_index(scene, cache=cache, incremental=True)
        repaired = update_index(idx, SceneDelta.delete(scene.rects[0]), cache=cache)
        # the full-scene solve artifact is keyed by the NEW content hash:
        # the parent's entry must not have satisfied it
        assert not repaired.provenance["repair"]["solve_cached"]
        for st in repaired.provenance["stages"]:
            if st["name"] == "solve":
                assert not st["cached"]

    def test_differential_fuzz_quick(self):
        # tier-1 slice of `repro fuzz --updates`; CI runs the 100+ scene
        # sweep with the same checker
        for seed in range(6):
            n = 10 + 4 * (seed % 3)
            problems = check_update(
                list(random_disjoint_rects(n, seed=seed)), n_edits=3, seed=seed
            )
            assert problems == [], problems

    def test_differential_fuzz_covers_grid_engine(self):
        problems = check_update(
            list(random_disjoint_rects(10, seed=11)),
            n_edits=2,
            seed=11,
            engines=("parallel", "sequential", "grid"),
        )
        assert problems == [], problems


class TestSceneStoreGenerations:
    def _idx(self, n=6, seed=1):
        return build_index(_scene(n, seed=seed))

    def test_swap_publishes_atomically(self):
        store = SceneStore()
        store.add_builder("s", lambda: self._idx(seed=1))
        old = store.get("s")
        assert store.generation("s") == 0
        new = self._idx(seed=2)
        gen = store.swap("s", new)
        assert gen == 1 and store.generation("s") == 1
        assert store.get("s") is new
        assert store.stats()["swaps"] == 1

    def test_pinned_old_generation_survives_swap(self):
        store = SceneStore()
        store.add_builder("s", lambda: self._idx(seed=1))
        old = store.pin("s")
        new = self._idx(seed=2)
        store.swap("s", new)
        # the reader's matrix is still intact and addressable
        assert np.asarray(old.index.matrix).shape[0] > 0
        leaks = store.leaked_pins()
        assert "s" in leaks and leaks["s"][0][0] == 0 and leaks["s"][0][1] == 1
        store.unpin("s", old)  # drains the retired generation
        assert store.leaked_pins() == {}
        assert store.stats()["retired_generations"] == 0

    def test_unpin_without_index_prefers_live_then_retired(self):
        store = SceneStore()
        store.add_builder("s", lambda: self._idx(seed=1))
        old = store.pin("s")
        store.swap("s", self._idx(seed=2))
        store.pin("s")  # new generation pin
        store.unpin("s")  # live generation first
        store.unpin("s")  # then the retired one
        assert store.leaked_pins() == {}

    def test_unpin_never_pinned_is_error(self):
        store = SceneStore()
        store.add_builder("s", lambda: self._idx(seed=1))
        store.get("s")
        with pytest.raises(QueryError, match="not pinned"):
            store.unpin("s")

    def test_replace_source_is_lazy(self):
        store = SceneStore()
        built = []

        def builder():
            built.append(1)
            return self._idx(seed=3)

        store.add_builder("s", lambda: self._idx(seed=1))
        store.get("s")
        gen = store.replace_source("s", builder)
        assert gen == 1
        assert built == []  # nothing materialized yet
        assert store.resident().get("s") is None
        store.get("s")
        assert built == [1]

    def test_replace_source_retires_pinned_resident(self):
        store = SceneStore()
        store.add_builder("s", lambda: self._idx(seed=1))
        old = store.pin("s")
        store.replace_source("s", lambda: self._idx(seed=4))
        assert store.leaked_pins() != {}
        store.unpin("s", old)
        assert store.leaked_pins() == {}

    def test_swap_registers_unknown_scene(self):
        store = SceneStore()
        idx = self._idx(seed=5)
        gen = store.swap("fresh", idx)
        assert gen == 1 and store.get("fresh") is idx

    def test_pin_is_bounded_under_eviction_races(self, monkeypatch):
        store = SceneStore()
        store.add_builder("s", lambda: self._idx(seed=1))
        real_get = store.get

        def hostile_get(name):
            idx = real_get(name)
            store.evict(name)  # every get loses the race
            return idx

        monkeypatch.setattr(store, "get", hostile_get)
        with pytest.raises(QueryError, match="evicted"):
            store.pin("s")

    def test_leaked_pins_age_filter(self):
        store = SceneStore()
        store.add_builder("s", lambda: self._idx(seed=1))
        store.pin("s")
        store.swap("s", self._idx(seed=2))
        assert store.leaked_pins(older_than_s=0.0) != {}
        assert store.leaked_pins(older_than_s=3600.0) == {}


class TestQuarantine:
    def test_collision_safe_suffixes(self, tmp_path):
        p = tmp_path / "campus.rsp"
        p.write_bytes(b"corrupt-1")
        first = quarantine(p)
        assert first is not None and first.name == "campus.rsp.quarantined"
        p.write_bytes(b"corrupt-2")
        second = quarantine(p)
        assert second is not None and second.name == "campus.rsp.quarantined.1"
        p.write_bytes(b"corrupt-3")
        third = quarantine(p)
        assert third is not None and third.name == "campus.rsp.quarantined.2"
        assert first.read_bytes() == b"corrupt-1"
        assert second.read_bytes() == b"corrupt-2"
        assert not p.exists()


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory unavailable"
)
class TestShmRollover:
    def test_republish_bumps_generation_and_retires_old(self):
        from repro.serve.shm import ShmPublisher, attach

        scene = _scene(8, seed=6)
        idx0 = build_index(scene)
        edited = scene.apply_delta(SceneDelta.delete(scene.rects[0]))
        idx1 = build_index(edited)
        with ShmPublisher() as pub:
            m0 = pub.publish("s", idx0)
            assert m0.get("generation", 0) == 0
            a0 = attach(m0)  # a reader on the old generation
            m1 = pub.republish("s", idx1)
            assert m1["generation"] == 1
            a1 = attach(m1)
            assert np.asarray(a1.index.matrix).tobytes() == np.asarray(
                idx1.index.matrix
            ).tobytes()
            # old mapping stays readable until released (POSIX unlink
            # semantics keep attached segments valid)
            assert np.asarray(a0.index.matrix).tobytes() == np.asarray(
                idx0.index.matrix
            ).tobytes()
            released = pub.release_retired("s")
            assert released >= 1
            assert pub.release_retired("s") == 0


async def _rpc(host, port, *msgs, timeout=60.0):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        from repro.cluster.protocol import read_frame, write_frame

        for m in msgs:
            await write_frame(writer, m)
        return [await asyncio.wait_for(read_frame(reader), timeout) for _ in msgs]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestClusterUpdate:
    def test_rollover_answers_new_generation_exactly(self):
        from repro.cluster.frontend import ClusterFrontend

        rects = random_disjoint_rects(16, seed=3)

        async def run():
            async with ClusterFrontend(
                {"demo": {"obstacles": rects}}, workers=2
            ) as fe:
                (desc,) = await _rpc(
                    fe.host, fe.port, {"id": 1, "op": "describe", "scene": "demo"}
                )
                assert desc["ok"] and desc["result"]["generation"] == 0
                scene0 = Scene.from_dict(desc["result"]["scene"])
                victim = rects[8]
                scene1 = scene0.apply_delta(SceneDelta.delete(victim))
                idx0 = build_index(scene0, cache=StageCache(64, 1 << 28))
                idx1 = build_index(scene1, cache=StageCache(64, 1 << 28))
                pairs = [
                    [[r.xlo, r.ylo], [rects[12].xhi, rects[12].yhi]]
                    for r in (rects[0], rects[4])
                ]
                q = {"id": 2, "op": "lengths", "scene": "demo", "pairs": pairs}
                (r0,) = await _rpc(fe.host, fe.port, q)
                assert r0["result"] == [
                    idx0.length(tuple(p), tuple(qq)) for p, qq in pairs
                ]
                (up,) = await _rpc(
                    fe.host,
                    fe.port,
                    {
                        "id": 3,
                        "op": "update",
                        "scene": "demo",
                        "delta": SceneDelta.delete(victim).to_dict(),
                    },
                )
                assert up["ok"], up
                res = up["result"]
                assert res["generation"] == 1
                assert res["scene_hash"] == scene1.content_hash()
                assert res["repair"]["reused_entries"] > 0
                # post-ack queries are strictly after the linearization
                # point: they must answer the NEW generation exactly
                (r1,) = await _rpc(fe.host, fe.port, dict(q, id=4))
                assert r1["result"] == [
                    idx1.length(tuple(p), tuple(qq)) for p, qq in pairs
                ]
                (sc,) = await _rpc(fe.host, fe.port, {"id": 5, "op": "scenes"})
                assert sc["result"]["generations"] == {"demo": 1}
                assert sc["result"]["updatable"] == ["demo"]

        asyncio.run(run())

    def test_bad_delta_leaves_generation_unchanged(self):
        from repro.cluster.frontend import ClusterFrontend
        from repro.geometry.primitives import Rect

        rects = random_disjoint_rects(8, seed=7)

        async def run():
            async with ClusterFrontend(
                {"demo": {"obstacles": rects}}, workers=1
            ) as fe:
                ghost = Rect(10**6, 10**6, 10**6 + 2, 10**6 + 2)
                bad, unknown, sc = await _rpc(
                    fe.host,
                    fe.port,
                    {
                        "id": 1,
                        "op": "update",
                        "scene": "demo",
                        "delta": SceneDelta.delete(ghost).to_dict(),
                    },
                    {
                        "id": 2,
                        "op": "update",
                        "scene": "nope",
                        "delta": SceneDelta.delete(ghost).to_dict(),
                    },
                    {"id": 3, "op": "scenes"},
                )
                assert not bad["ok"] and "not in the scene" in bad["error"]
                assert not unknown["ok"]
                assert sc["result"]["generations"] == {"demo": 0}

        asyncio.run(run())

    def test_rollover_survives_worker_kill(self):
        # chaos case: SIGKILL one worker, roll over while the slot is
        # down, and require the respawned worker to serve the NEW
        # generation (it reads the updated spec list on start)
        from repro.cluster.frontend import ClusterFrontend

        rects = random_disjoint_rects(12, seed=13)

        async def run():
            async with ClusterFrontend(
                {"demo": {"obstacles": rects}}, workers=2
            ) as fe:
                victim = rects[5]
                scene0 = Scene.from_obstacles(rects)
                scene1 = scene0.apply_delta(SceneDelta.delete(victim))
                idx1 = build_index(scene1, cache=StageCache(64, 1 << 28))
                os.kill(fe.workers[0].proc.pid, signal.SIGKILL)
                (up,) = await _rpc(
                    fe.host,
                    fe.port,
                    {
                        "id": 1,
                        "op": "update",
                        "scene": "demo",
                        "delta": SceneDelta.delete(victim).to_dict(),
                    },
                )
                assert up["ok"], up
                assert up["result"]["generation"] == 1
                # wait for the supervisor to bring the slot back
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    (h,) = await _rpc(fe.host, fe.port, {"id": 2, "op": "health"})
                    if h["result"]["workers_alive"] == 2:
                        break
                    await asyncio.sleep(0.1)
                else:
                    pytest.fail("killed worker never respawned")
                # every queryable pair must answer from the new scene —
                # whichever worker (survivor or respawn) picks it up
                pairs = [
                    [[r.xlo, r.ylo], [rects[9].xhi, rects[9].yhi]]
                    for r in (rects[0], rects[2])
                ]
                for _ in range(6):
                    (r,) = await _rpc(
                        fe.host,
                        fe.port,
                        {"id": 3, "op": "lengths", "scene": "demo", "pairs": pairs},
                    )
                    assert r["ok"], r
                    assert r["result"] == [
                        idx1.length(tuple(p), tuple(q)) for p, q in pairs
                    ]

        asyncio.run(run())
