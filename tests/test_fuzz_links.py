"""Differential fuzz of the link-query family (200+ seeded scenes).

Every scene runs :func:`repro.core.crosscheck.check_links`: the layered-
DP :class:`~repro.links.index.LinkDistanceIndex` (through the facade, per
engine) against the independent grid-Dijkstra reference
(:meth:`GridOracle.link_dist` / ``link_pareto``).  Agreement is exact —
min-link counts, the full (length, bends) Pareto frontier, frontier
non-dominance, the frontier/length() tie-in — and the reference engine's
witness paths must be valid (rectilinear, clear, in-container, correct
length AND exact bend count) via ``validate_path``.

Scene kinds cycle rects / polygons+rects / polygons-only / container —
the acceptance grid for the subsystem.  Batches are parametrized so a
failure names its (batch, seed) and pytest can rerun one batch alone.
"""

import pytest

from repro.core.api import split_obstacles
from repro.core.crosscheck import check_links
from repro.workloads.generators import (
    random_container_polygon,
    random_disjoint_rects,
    random_polygon_scene,
)

SCENES_PER_BATCH = 10
N_BATCHES = 21  # 210 scenes total


def _scene(seed: int, kind: int):
    """One seeded scene of the cycling kind; returns (obstacles, container)."""
    if kind == 0:  # pure rectangles (the paper's model)
        return list(random_disjoint_rects(8, seed=seed)), None
    if kind == 1:  # polygons + rects
        return random_polygon_scene(2, 3, seed=seed), None
    if kind == 2:  # polygons only
        return random_polygon_scene(2, 0, seed=seed), None
    obstacles = random_polygon_scene(1, 2, seed=seed)
    _, _, all_rects, _ = split_obstacles(obstacles)
    return obstacles, random_container_polygon(all_rects, seed=seed)


@pytest.mark.parametrize("batch", range(N_BATCHES))
def test_links_agree_with_grid_oracle(batch):
    for i in range(SCENES_PER_BATCH):
        n = batch * SCENES_PER_BATCH + i
        seed = 40000 + n
        obstacles, container = _scene(seed, n % 4)
        problems = check_links(obstacles, container, seed=seed)
        assert not problems, (
            f"scene {n} (seed {seed}, kind {n % 4}): {problems[0]}"
        )


def test_links_agree_with_extra_registered_points():
    """Registered extra points ride the Hanan grid and must agree too."""
    rects = list(random_disjoint_rects(6, seed=77))
    from repro.workloads.generators import random_free_points

    extra = random_free_points(rects, 4, seed=77)
    problems = check_links(rects, extra_points=extra, seed=77)
    assert not problems, problems[0]
