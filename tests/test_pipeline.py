"""The staged build pipeline: scene layer, engine registry, stage cache,
and provenance — the contract behind ``ShortestPathIndex.build``.

Locks the refactor invariants:

* one authoritative scene parse/validate path (CLI, scenefile wrappers,
  and cluster worker specs produce *identical* one-line error messages);
* stage-cache semantics (same scene under a second engine reuses the
  geometry stages; same engine reuses everything; simulated PRAM costs
  replay identically on cache hits);
* provenance round-trips through ``.rsp`` snapshots and stays backward
  compatible with pre-provenance headers;
* a toy engine registered at runtime is first-class end-to-end (API,
  snapshot, CLI ``--engine``).
"""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.api import ShortestPathIndex
from repro.core.crosscheck import check_scene
from repro.errors import EngineError, GeometryError
from repro.geometry.primitives import Rect
from repro.pipeline import (
    StageCache,
    build_index,
    engine_names,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.scene import Scene
from repro.workloads.generators import random_disjoint_rects, random_polygon_scene

RECTS = [Rect(2, 2, 4, 8), Rect(6, 0, 9, 5)]


def scene_of(rects=None, **kw):
    return Scene.from_obstacles(rects if rects is not None else RECTS, **kw)


def stage_flags(idx):
    return {st["name"]: st["cached"] for st in idx.provenance["stages"]}


# ----------------------------------------------------------------------
class TestEngineRegistry:
    def test_builtin_engines_registered(self):
        assert {"parallel", "sequential", "grid"} <= set(engine_names())

    def test_unknown_engine_one_line_error_lists_registered(self):
        with pytest.raises(EngineError) as exc:
            get_engine("quantum")
        msg = str(exc.value)
        assert "unknown engine 'quantum'" in msg
        for name in engine_names():
            assert name in msg
        assert "\n" not in msg

    def test_unknown_engine_is_a_value_error(self):
        # pre-registry callers caught ValueError from the string if/elif
        with pytest.raises(ValueError):
            ShortestPathIndex.build([Rect(0, 0, 1, 1)], engine="quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(EngineError, match="already registered"):
            register_engine("grid")(lambda *a: None)

    def test_unregister_unknown_engine(self):
        with pytest.raises(EngineError, match="unknown engine"):
            unregister_engine("nope")

    def test_toy_engine_end_to_end(self, tmp_path):
        grid = get_engine("grid")

        @register_engine("toy", description="grid in a funny hat")
        def _toy(dec, graph, pram, leaf_size):
            return grid.solve(dec, graph, pram, leaf_size)

        try:
            assert "toy" in engine_names()
            idx = ShortestPathIndex.build(RECTS, engine="toy")
            ref = ShortestPathIndex.build(RECTS, engine="parallel")
            assert idx.engine == "toy"
            assert idx.provenance["engine"] == "toy"
            assert list(idx.index.points) == list(ref.index.points)
            assert np.array_equal(idx.index.matrix, ref.index.matrix)
            # snapshots carry the engine name and provenance through
            snap = tmp_path / "toy.rsp"
            idx.save(snap)
            loaded = ShortestPathIndex.load(snap)
            assert loaded.engine == "toy"
            assert loaded.provenance["engine"] == "toy"
            # the CLI picks the new engine up from the registry
            scene = tmp_path / "scene.json"
            scene.write_text(json.dumps({"rects": [[2, 2, 4, 8], [6, 0, 9, 5]]}))
            assert main(["plan", str(scene), "--engine", "toy"]) == 0
        finally:
            unregister_engine("toy")
        assert "toy" not in engine_names()

    def test_reregistered_engine_never_serves_stale_cache(self):
        cache = StageCache()
        grid = get_engine("grid")

        @register_engine("versioned")
        def _v1(dec, graph, pram, leaf_size):
            return grid.solve(dec, graph, pram, leaf_size)

        try:
            a = build_index(scene_of(), engine="versioned", cache=cache)
        finally:
            unregister_engine("versioned")

        @register_engine("versioned")
        def _v2(dec, graph, pram, leaf_size):
            from repro.core.allpairs import DistanceIndex

            idx = grid.solve(dec, graph, pram, leaf_size)
            return DistanceIndex(idx.points, np.asarray(idx.matrix) + 1000.0)

        try:
            b = build_index(scene_of(), engine="versioned", cache=cache)
        finally:
            unregister_engine("versioned")
        assert not stage_flags(b)["solve"]  # v2 really ran
        assert b.index.matrix[0, 1] == a.index.matrix[0, 1] + 1000.0

    def test_obstacle_free_scene_with_extras_round_trips(self):
        s = Scene.from_obstacles([], extra_points=[(0, 0), (5, 5)])
        back = Scene.from_dict(json.loads(json.dumps(s.to_dict())))
        assert back == s
        idx = build_index(back, engine="parallel", cache=StageCache())
        assert idx.index.length((0, 0), (5, 5)) == 10
        with pytest.raises(GeometryError, match="no obstacles"):
            Scene.from_dict({"version": 2, "rects": [], "polygons": []})

    def test_grid_engine_agrees_on_polygon_scene(self):
        obstacles = random_polygon_scene(1, 2, seed=3)
        assert check_scene(
            obstacles, seed=3, engines=("parallel", "sequential", "grid")
        ) == []


# ----------------------------------------------------------------------
class TestStageCache:
    def test_second_engine_reuses_geometry_stages(self):
        cache = StageCache()
        idx_a = build_index(scene_of(), engine="parallel", cache=cache)
        idx_b = build_index(scene_of(), engine="sequential", cache=cache)
        assert stage_flags(idx_a) == {
            "decompose": False, "graph": False, "solve": False,
            "query-structures": False,
        }
        flags = stage_flags(idx_b)
        assert flags["decompose"] and flags["graph"]  # geometry reused
        assert not flags["solve"]  # a different engine must solve anew
        stats = cache.stats()
        assert stats["misses"]["decompose"] == 1
        assert stats["misses"]["graph"] == 1
        assert stats["hits"]["decompose"] == 1
        assert stats["misses"]["solve"] == 2
        # both engines agree on the answers, of course
        assert np.array_equal(
            idx_a.index.submatrix(idx_a.index.points),
            idx_b.index.submatrix(idx_a.index.points),
        )

    def test_same_engine_rebuild_is_fully_cached_and_identical(self):
        cache = StageCache()
        cold = build_index(scene_of(), engine="parallel", cache=cache)
        warm = build_index(scene_of(), engine="parallel", cache=cache)
        flags = stage_flags(warm)
        assert flags["decompose"] and flags["graph"] and flags["solve"]
        assert np.array_equal(cold.index.matrix, warm.index.matrix)
        assert list(cold.index.points) == list(warm.index.points)
        # simulated costs replay exactly on the cache hit
        assert cold.build_stats() == warm.build_stats()

    def test_extra_points_rekey_graph_but_not_decompose(self):
        cache = StageCache()
        build_index(scene_of(), engine="sequential", cache=cache)
        idx = build_index(
            scene_of(extra_points=[(0, 0)]), engine="sequential", cache=cache
        )
        flags = stage_flags(idx)
        assert flags["decompose"]  # geometry alone keys the decompose stage
        assert not flags["graph"]  # extras change the point universe
        assert idx.index.has_point((0, 0))

    def test_extra_point_coinciding_with_a_vertex_still_builds(self):
        v = RECTS[0].sw  # an obstacle corner registered again as an extra
        for engine in ("parallel", "sequential", "grid"):
            idx = ShortestPathIndex.build(RECTS, extra_points=[v], engine=engine)
            assert idx.index.has_point(v)

    def test_conflict_detecting_pram_bypasses_the_cache(self):
        from repro.pram.machine import PRAM

        cache = StageCache()
        build_index(scene_of(), engine="sequential", cache=cache)
        audit = build_index(
            scene_of(),
            engine="sequential",
            pram=PRAM("audit", detect_conflicts=True),
            cache=cache,
        )
        assert not stage_flags(audit)["solve"]  # the engine really ran

    def test_disabled_cache_never_hits(self):
        cache = StageCache(max_entries=0)
        build_index(scene_of(), engine="sequential", cache=cache)
        idx = build_index(scene_of(), engine="sequential", cache=cache)
        assert not any(stage_flags(idx).values())

    def test_lru_eviction_bounds_entries(self):
        cache = StageCache(max_entries=2)
        for seed in range(4):
            build_index(
                scene_of(random_disjoint_rects(4, seed=seed)),
                engine="sequential",
                cache=cache,
            )
        assert cache.stats()["entries"] <= 2

    def test_oversized_artifact_does_not_flush_cache(self):
        class Blob:
            def __init__(self, n):
                self.n = n

            def nbytes(self):
                return self.n

        cache = StageCache(max_entries=8, max_bytes=100)
        for i in range(5):
            cache.put(("solve", f"k{i}"), Blob(10), 10)
        cache.put(("solve", "huge"), Blob(1000), 1000)  # over budget alone
        stats = cache.stats()
        assert stats["entries"] == 5  # the small entries survive
        assert cache.get(("solve", "huge")) is None
        assert cache.get(("solve", "k0")) is not None

    def test_extra_points_round_trip_through_dict(self):
        a = scene_of(extra_points=[(0, 0), (11, 7)])
        b = Scene.from_dict(json.loads(json.dumps(a.to_dict())))
        assert b.extra_points == ((0, 0), (11, 7))
        assert b == a
        assert a.content_hash() == b.content_hash()
        # non-integer extras survive the JSON boundary exactly too
        f = scene_of(extra_points=[(2.5, 1)])
        g = Scene.from_dict(json.loads(json.dumps(f.to_dict())))
        assert g.extra_points == ((2.5, 1),)
        assert g.content_hash() == f.content_hash()
        with pytest.raises(GeometryError, match="schema v1"):
            Scene.from_dict({"rects": [[0, 0, 1, 1]], "extra_points": [[5, 5]]})
        with pytest.raises(GeometryError, match="bad extra point list"):
            Scene.from_dict(
                {"version": 2, "rects": [[0, 0, 1, 1]], "extra_points": [["x", 5]]}
            )
        # non-finite coordinates get the one-line rejection, not a traceback
        for bad in (float("inf"), float("nan"), True):
            with pytest.raises(GeometryError, match="bad extra point list"):
                Scene.from_dict(
                    {"version": 2, "rects": [[0, 0, 1, 1]],
                     "extra_points": [[bad, 0]]}
                )
        # huge integer coordinates stay exact (no float round trip)
        big = 2**60 + 1
        s = Scene.from_dict(
            {"version": 2, "rects": [[0, 0, 1, 1]], "extra_points": [[big, 0]]}
        )
        assert s.extra_points == ((big, 0),)

    def test_export_arrays_keeps_huge_integer_points_exact(self):
        from repro.core.allpairs import DistanceIndex

        big = 2**60 + 1
        pts = [(0, 0), (big, 2)]
        idx = DistanceIndex(pts, np.zeros((2, 2)))
        out = idx.export_arrays()
        assert out["points"].dtype == np.int64
        assert out["points"][1, 0] == big
        back = DistanceIndex.from_arrays(out["points"], out["matrix"])
        assert back.has_point((big, 2))

    def test_cached_matrix_is_frozen_against_aliasing(self):
        cache = StageCache()
        a = build_index(scene_of(), engine="sequential", cache=cache)
        with pytest.raises(ValueError):  # numpy rejects writes, loudly
            a.index.matrix[0, 1] = 0.0
        b = build_index(scene_of(), engine="sequential", cache=cache)
        assert np.array_equal(a.index.matrix, b.index.matrix)

    def test_non_integer_extras_are_preserved_verbatim(self):
        s = Scene.from_obstacles(RECTS, extra_points=[(2.5, 1)])
        assert s.extra_points == ((2.5, 1),)
        s.content_hash()  # hashable despite the float coordinate
        idx = ShortestPathIndex.build(RECTS, extra_points=[(2.5, 1)])
        assert idx.index.has_point((2.5, 1))
        # parallel and sequential index the exact point and agree, and
        # single lookups return the same fractional value as the batch
        seq = ShortestPathIndex.build(RECTS, extra_points=[(2.5, 1)],
                                      engine="sequential")
        assert seq.index.submatrix([(2, 2)], [(2.5, 1)])[0, 0] == 1.5
        assert idx.index.submatrix([(2, 2)], [(2.5, 1)])[0, 0] == 1.5
        assert idx.index.length((2, 2), (2.5, 1)) == 1.5
        assert idx.length((2, 2), (4, 2)) == 2  # integer domain stays int
        assert isinstance(idx.length((2, 2), (4, 2)), int)
        # ...but the integer-exact grid engine must refuse, not truncate
        with pytest.raises(GeometryError, match="integer coordinates"):
            ShortestPathIndex.build(RECTS, extra_points=[(2.5, 1)], engine="grid")

    @pytest.mark.parametrize("layout", ["raw", "npz"])
    def test_non_integer_extras_survive_snapshots(self, tmp_path, layout):
        from repro.serve.snapshot import load, save

        idx = ShortestPathIndex.build(RECTS, extra_points=[(2.5, 1)])
        snap = tmp_path / "f.rsp"
        save(idx, snap, layout=layout)
        loaded = load(snap)
        assert loaded.index.has_point((2.5, 1))
        assert not loaded.index.has_point((2.5, 2))
        assert np.array_equal(loaded.index.matrix, idx.index.matrix)
        # integer-only scenes keep the compact int64 point payload
        plain = ShortestPathIndex.build(RECTS)
        assert plain.index.export_arrays()["points"].dtype == np.int64
        assert idx.index.export_arrays()["points"].dtype == np.float64

    def test_scene_hashes(self):
        a = scene_of()
        b = Scene.from_dict(json.loads(json.dumps(a.to_dict())))
        assert a.content_hash() == b.content_hash()
        assert a.geometry_hash() == scene_of(extra_points=[(0, 0)]).geometry_hash()
        assert a.content_hash() != scene_of(extra_points=[(0, 0)]).content_hash()
        assert a.content_hash() != scene_of([Rect(0, 0, 1, 1)]).content_hash()

    def test_numpy_scalar_extras_hash_exactly(self):
        # two huge np.int64 extras one apart must not collapse through
        # float64 into the same hash (the cache would alias their solves)
        big = 2**60
        h1 = scene_of(extra_points=[(np.int64(big), 5)]).content_hash()
        h2 = scene_of(extra_points=[(np.int64(big + 1), 5)]).content_hash()
        assert h1 != h2
        # and a numpy int hashes like the equal python int
        assert h1 == scene_of(extra_points=[(big, 5)]).content_hash()

    def test_float_coordinate_rects_hash_like_int_rects(self):
        a = Scene.from_obstacles([Rect(2.0, 2.0, 4.0, 8.0)])
        b = Scene.from_obstacles([Rect(2, 2, 4, 8)])
        assert a == b
        assert a.geometry_hash() == b.geometry_hash()
        assert a.content_hash() == b.content_hash()
        # integral floats also survive the wire (to_dict emits ints)
        assert Scene.from_dict(json.loads(json.dumps(a.to_dict()))) == b

    def test_fractional_obstacle_coordinates_rejected(self):
        # fractional rects made the seed engines silently DISAGREE
        # (parallel returned sub-metric d((0,0),(2.5,0)) = 2 for corners
        # 2.5 apart); the canonical door now rejects them loudly
        rects = [Rect(0, 0, 2.5, 2), Rect(4, 0, 6, 2)]
        with pytest.raises(GeometryError, match="must be integers"):
            Scene.from_obstacles(rects)
        with pytest.raises(GeometryError, match="must be integers"):
            ShortestPathIndex.build(rects)

    def test_v1_scene_with_stray_empty_extras_key_still_loads(self):
        s = Scene.from_dict({"rects": [[0, 0, 1, 1]], "extra_points": []})
        assert s.extra_points == ()
        with pytest.raises(GeometryError, match="schema v1"):
            Scene.from_dict({"rects": [[0, 0, 1, 1]], "extra_points": [[5, 5]]})

    def test_api_extras_validated_at_the_door(self):
        # non-numeric / non-finite extras fail with one line right away,
        # never a deep ValueError from the hash or an engine — and every
        # accepted Scene can save/load round-trip
        for bad in ("x", float("inf"), float("nan"), True, None):
            with pytest.raises(GeometryError, match="bad extra point list"):
                Scene.from_obstacles(RECTS, extra_points=[(bad, 0)])
        # integral values normalize to exact ints; fractions are kept
        s = Scene.from_obstacles(RECTS, extra_points=[(2.0, 1), (2.5, 1)])
        assert s.extra_points == ((2, 1), (2.5, 1))
        assert all(isinstance(s.extra_points[0][k], int) for k in (0, 1))
        assert Scene.from_dict(json.loads(json.dumps(s.to_dict()))) == s

    def test_to_dict_is_json_safe_for_numpy_scalars(self):
        s = Scene.from_obstacles(
            [Rect(np.int64(0), np.int64(0), np.int64(2), np.int64(2))],
            extra_points=[(np.int64(5), np.int64(5))],
        )
        wire = json.loads(json.dumps(s.to_dict()))
        assert Scene.from_dict(wire) == s

    def test_from_dict_rejects_fractional_geometry_and_string_extras(self):
        # both doors of the scene layer agree: fractional obstacle
        # coordinates are rejected (never truncated) ...
        with pytest.raises(GeometryError, match="bad rect row"):
            Scene.from_dict({"rects": [[0, 0, 2, 2.5]]})
        with pytest.raises(GeometryError, match="bad container loop"):
            Scene.from_dict(
                {"version": 2, "rects": [[0, 0, 1, 1]],
                 "container": [[-1, -1], [5.5, -1], [5.5, 5], [-1, 5]]}
            )
        # ... and string extras fail like the programmatic door
        with pytest.raises(GeometryError, match="bad extra point list"):
            Scene.from_dict(
                {"version": 2, "rects": [[0, 0, 1, 1]],
                 "extra_points": [["5", "6.5"]]}
            )
        # digit-string rect rows stay accepted (legacy int() behavior)
        s = Scene.from_dict({"rects": [["0", "0", "2", "2"]]})
        assert s.obstacles == (Rect(0, 0, 2, 2),)

    def test_legacy_wrappers_reject_extras_only_scenes(self):
        from repro.workloads.scenefile import scene_from_dict

        with pytest.raises(GeometryError, match="no obstacles"):
            scene_from_dict({"version": 2, "extra_points": [[1, 1]]})

    def test_nonfinite_extras_rejected_for_every_engine(self):
        # Scene.from_obstacles is the door; the grid engine's own gate
        # stays as defense-in-depth for directly constructed artifacts
        for engine in ("parallel", "sequential", "grid"):
            for bad in (float("inf"), float("nan")):
                with pytest.raises(GeometryError, match="bad extra point list"):
                    ShortestPathIndex.build(
                        RECTS, extra_points=[(bad, 0)], engine=engine
                    )

    def test_integral_float_extras_hash_stably_across_round_trip(self):
        # (2.0, 3) == (2, 3) as scene content, so the hash — the stage
        # cache key — must agree across the to_dict/from_dict boundary
        a = scene_of(extra_points=[(2.0, 3)])
        b = Scene.from_dict(json.loads(json.dumps(a.to_dict())))
        assert b == a
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() == scene_of(extra_points=[(2, 3)]).content_hash()

    def test_export_arrays_rejects_beyond_int64(self):
        from repro.core.allpairs import DistanceIndex
        from repro.errors import QueryError

        idx = DistanceIndex([(2**70, 0), (0, 1)], np.zeros((2, 2)))
        with pytest.raises(QueryError, match="int64"):
            idx.export_arrays()
        # mixed huge-int + float coordinates cannot be float64-exact:
        # refuse loudly instead of silently moving the integer point
        mixed = DistanceIndex([(2**60 + 1, 0), (0.5, 1)], np.zeros((2, 2)))
        with pytest.raises(QueryError, match="float64"):
            mixed.export_arrays()

    def test_cli_grid_engine_rejection_is_one_line(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({
            "version": 2, "rects": [[2, 2, 4, 8]], "extra_points": [[2.5, 0]],
        }))
        for argv in (
            ["plan", str(scene), "--engine", "grid"],
            ["bench-info", str(scene), "--engine", "grid"],
            ["snapshot", str(scene), str(tmp_path / "o.rsp"), "--engine", "grid"],
            ["query", str(scene), "0,0", "5,5", "--engine", "grid"],
        ):
            with pytest.raises(SystemExit, match="integer coordinates") as exc:
                main(argv)
            assert "\n" not in str(exc.value).strip()

    def test_check_scene_reports_vertex_mismatch_with_grid_engine(self):
        # a broken engine whose point set differs must be *reported*, not
        # crash the fuzz loop with a KeyError in the grid fast path
        from repro.pipeline import get_engine

        grid = get_engine("grid")

        @register_engine("missing-point", description="drops a vertex")
        def _bad(dec, graph, pram, leaf_size):
            from repro.core.allpairs import DistanceIndex

            idx = grid.solve(dec, graph, pram, leaf_size)
            return DistanceIndex(idx.points[:-1], idx.matrix[:-1, :-1])

        try:
            problems = check_scene(
                RECTS, engines=("missing-point", "grid"), n_paths=0, n_arbitrary=0
            )
        finally:
            unregister_engine("missing-point")
        assert problems and "vertex sets differ" in problems[0]


# ----------------------------------------------------------------------
class TestProvenance:
    def test_every_build_reports_all_stages(self):
        idx = ShortestPathIndex.build(RECTS)
        names = [st["name"] for st in idx.provenance["stages"]]
        assert names == ["decompose", "graph", "solve", "query-structures"]
        solve = idx.provenance["stages"][2]
        assert solve["pram_time"] == idx.pram.time
        assert solve["pram_work"] == idx.pram.work

    @pytest.mark.parametrize("layout", ["raw", "npz"])
    def test_provenance_round_trips_through_snapshot(self, tmp_path, layout):
        from repro.serve.snapshot import load, read_header, save

        idx = ShortestPathIndex.build(RECTS, engine="sequential")
        snap = tmp_path / "s.rsp"
        save(idx, snap, layout=layout)
        header = read_header(snap)
        assert header["provenance"]["engine"] == "sequential"
        loaded = load(snap)
        assert loaded.provenance == idx.provenance

    def test_pre_provenance_snapshot_still_loads(self, tmp_path):
        from repro.serve.snapshot import load, read_header, save

        idx = ShortestPathIndex.build(RECTS)
        idx.provenance = None  # simulate an index from an older build path
        snap = tmp_path / "old.rsp"
        save(idx, snap)
        assert "provenance" not in read_header(snap)
        loaded = load(snap)
        assert loaded.provenance is None
        assert loaded.length(RECTS[0].sw, RECTS[1].ne) == idx.length(
            RECTS[0].sw, RECTS[1].ne
        )

    def test_bench_info_requires_provenance_when_asked(self, tmp_path, capsys):
        from repro.serve.snapshot import save

        idx = ShortestPathIndex.build(RECTS)
        with_prov = tmp_path / "new.rsp"
        save(idx, with_prov)
        assert main(["bench-info", str(with_prov), "--require-provenance"]) == 0
        assert "solve" in capsys.readouterr().out
        idx.provenance = None
        without = tmp_path / "old.rsp"
        save(idx, without)
        assert main(["bench-info", str(without)]) == 0
        assert main(["bench-info", str(without), "--require-provenance"]) == 1

    def test_bench_info_require_provenance_rejects_json_scenes(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[0, 0, 2, 2]]}))
        with pytest.raises(SystemExit, match="applies to .rsp snapshots"):
            main(["bench-info", str(scene), "--require-provenance"])


# ----------------------------------------------------------------------
class TestSceneLayer:
    def test_scenefile_wrappers_delegate(self):
        from repro.workloads.scenefile import scene_from_dict, scene_to_dict

        data = scene_of().to_dict()
        obstacles, container = scene_from_dict(data)
        assert obstacles == list(scene_of().obstacles)
        assert container is None
        assert scene_to_dict(obstacles) == data

    def test_bad_rect_row_message_identical_everywhere(self, tmp_path):
        bad = {"rects": [[0, 0, "x", 10]]}
        with pytest.raises(GeometryError) as api_exc:
            Scene.from_dict(bad)
        # cluster worker specs go through the same parser
        from repro.cluster.worker import register_scene
        from repro.serve.store import SceneStore

        with pytest.raises(GeometryError) as worker_exc:
            register_scene(
                SceneStore(), {"name": "a", "kind": "build", "scene": bad}
            )
        assert str(worker_exc.value) == str(api_exc.value)
        # and the CLI prints the same message behind its one-line prefix
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(SystemExit) as cli_exc:
            main(["query", str(path), "0,0", "1,1"])
        assert str(cli_exc.value) == f"{path}: invalid scene: {api_exc.value}"

    def test_overlap_message_identical_cli_and_api(self, tmp_path):
        rows = [[0, 0, 10, 10], [5, 5, 15, 15]]
        with pytest.raises(GeometryError) as api_exc:
            Scene.from_dict({"rects": rows}).validate()
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"rects": rows}))
        with pytest.raises(SystemExit) as cli_exc:
            main(["bench-info", str(path)])
        assert str(cli_exc.value) == f"{path}: invalid scene: {api_exc.value}"
        assert "overlap" in str(api_exc.value)

    def test_scene_describe(self):
        obstacles = random_polygon_scene(1, 2, seed=1)
        s = Scene.from_obstacles(obstacles, extra_points=[(0, 0)])
        assert s.describe() == "2 rects, 1 polygons, no container, 1 extra points"

    def test_validate_returns_self(self):
        s = scene_of()
        assert s.validate() is s


# ----------------------------------------------------------------------
class TestConsumersBuildThroughPipeline:
    def test_scene_store_shares_stage_cache(self):
        from repro.serve.store import SceneStore

        cache = StageCache()
        store = SceneStore(stage_cache=cache)
        rects = random_disjoint_rects(5, seed=9)
        store.add_scene("par", rects, engine="parallel")
        store.add_scene("seq", rects, engine="sequential")
        a = store.get("par")
        b = store.get("seq")
        assert a.provenance["engine"] == "parallel"
        assert b.provenance["engine"] == "sequential"
        stats = cache.stats()
        # one geometry decomposition served both materializations
        assert stats["misses"]["decompose"] == 1
        assert stats["hits"]["decompose"] == 1
        assert np.array_equal(
            a.index.submatrix(a.index.points), b.index.submatrix(a.index.points)
        )

    def test_worker_build_spec_round_trips_scene_schema(self):
        from repro.cluster.worker import _WorkerState

        rects = random_disjoint_rects(5, seed=4)
        spec = {
            "name": "a",
            "kind": "build",
            "scene": Scene.from_obstacles(rects).to_dict(),
            "engine": "sequential",
        }
        state = _WorkerState(0, [spec], {})
        idx = state.store.get("a")
        assert idx.engine == "sequential"
        assert idx.provenance["engine"] == "sequential"

    def test_cli_plan_json(self, tmp_path, capsys):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[2, 2, 4, 8], [6, 0, 9, 5]]}))
        assert main(["plan", str(scene), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "parallel"
        assert [st["name"] for st in payload["stages"]] == [
            "decompose", "graph", "solve", "query-structures",
        ]
        assert all(not st["cached"] for st in payload["stages"])

    def test_cli_plan_text(self, tmp_path, capsys):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[2, 2, 4, 8], [6, 0, 9, 5]]}))
        assert main(["plan", str(scene), "--engine", "grid"]) == 0
        out = capsys.readouterr().out
        assert "solve[grid]" in out
        for token in ("decompose", "graph", "query-structures", "registered engines"):
            assert token in out

    def test_cli_snapshot_forwards_scene_extra_points(self, tmp_path):
        from repro.serve.snapshot import load

        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({
            "version": 2, "rects": [[2, 2, 4, 8], [6, 0, 9, 5]],
            "extra_points": [[0, 0], [2.5, 1]],
        }))
        rsp = tmp_path / "scene.rsp"
        assert main(["snapshot", str(scene), str(rsp)]) == 0
        loaded = load(rsp)
        assert loaded.index.has_point((0, 0))
        assert loaded.index.has_point((2.5, 1))

    def test_cli_fuzz_accepts_engine(self, capsys):
        assert main(["fuzz", "--scenes", "1", "--seed", "3", "--engine", "grid"]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_cli_query_accepts_grid_engine(self, tmp_path, capsys):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[2, 2, 4, 8], [6, 0, 9, 5]]}))
        assert main(["query", str(scene), "0,0", "10,9"]) == 0
        want = capsys.readouterr().out
        assert main(["query", str(scene), "0,0", "10,9", "--engine", "grid"]) == 0
        assert capsys.readouterr().out == want
