"""Tests for the ASCII renderer and figure regeneration."""

import pytest

from repro.geometry.primitives import Rect
from repro.viz.ascii import Canvas, render_scene
from repro.viz.figures import ALL_FIGURES, figure_text, render_all


class TestCanvas:
    def test_rect_drawn(self):
        c = Canvas((0, 0, 10, 10), width=20, height=10)
        c.rect(Rect(2, 2, 8, 8), fill="#")
        out = c.render()
        assert "#" in out

    def test_label(self):
        c = Canvas((0, 0, 10, 10), width=30, height=10)
        c.label((5, 5), "hello")
        assert "hello" in c.render()

    def test_polyline_corners(self):
        c = Canvas((0, 0, 10, 10), width=20, height=10)
        c.polyline([(0, 0), (5, 0), (5, 5)])
        out = c.render()
        assert "+" in out and "-" in out and "|" in out

    def test_render_scene_smoke(self):
        out = render_scene(
            [Rect(0, 0, 4, 4)],
            paths=[[(5, 0), (9, 0), (9, 6)]],
            points=[((5, 5), "X")],
            title="demo",
        )
        assert out.startswith("demo")
        assert "X" in out and "*" in out

    def test_clipping_out_of_range(self):
        c = Canvas((0, 0, 10, 10), width=12, height=6)
        c.put((100, 100), "Z")  # clamped, must not raise
        assert "Z" in c.render()


class TestFigures:
    @pytest.mark.parametrize("which", ALL_FIGURES)
    def test_each_figure_renders(self, which):
        out = figure_text(which)
        assert f"Fig. {which}" in out
        assert len(out.splitlines()) >= 3

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            figure_text(99)

    def test_render_all(self):
        figs = render_all()
        assert set(figs) == set(ALL_FIGURES)

    def test_fig4_shows_monge_contrast(self):
        out = figure_text(4)
        assert "is_monge = True" in out

    def test_fig2_flags_degeneracy(self):
        assert "degenerate" in figure_text(2)

    def test_figures_deterministic(self):
        assert figure_text(6) == figure_text(6)
