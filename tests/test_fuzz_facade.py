"""Randomized end-to-end fuzz of the public facade.

Hundreds of mixed operations (vertex queries, arbitrary queries, paths)
against the Dijkstra oracle on moderate scenes — the catch-all net for
rare case-analysis interactions that the targeted suites might miss.
Path validity and cross-engine agreement go through ``tests/harness.py``.
"""

import random

import pytest

from harness import assert_engines_agree, assert_valid_path
from repro.core.api import ShortestPathIndex
from repro.core.baseline import GridOracle
from repro.workloads.generators import (
    WORKLOAD_MODES,
    random_disjoint_rects,
    random_free_points,
)


@pytest.mark.parametrize("mode", WORKLOAD_MODES)
def test_fuzz_mixed_operations(mode):
    rng = random.Random(f"fuzz|{mode}")
    rects = random_disjoint_rects(18, seed=99, mode=mode)
    idx = ShortestPathIndex.build(rects, engine="parallel")
    verts = idx.vertices()
    free = random_free_points(rects, 12, seed=99)
    oracle = GridOracle(rects, verts + free)
    for step in range(120):
        op = rng.randrange(4)
        if op == 0:  # vertex-vertex length
            p, q = rng.choice(verts), rng.choice(verts)
            assert idx.length(p, q) == oracle.dist(p, q), (mode, step, p, q)
        elif op == 1:  # arbitrary-arbitrary length
            p, q = rng.choice(free), rng.choice(free)
            assert idx.length(p, q) == oracle.dist(p, q), (mode, step, p, q)
        elif op == 2:  # mixed length
            p, q = rng.choice(verts), rng.choice(free)
            assert idx.length(p, q) == oracle.dist(p, q), (mode, step, p, q)
        else:  # vertex-vertex path
            p, q = rng.choice(verts), rng.choice(verts)
            path = idx.shortest_path(p, q)
            assert_valid_path(idx, path, p, q, oracle.dist(p, q))


def test_fuzz_arbitrary_paths():
    rng = random.Random("fuzz-paths")
    rects = random_disjoint_rects(14, seed=123)
    idx = ShortestPathIndex.build(rects, engine="sequential")
    free = random_free_points(rects, 16, seed=123)
    oracle = GridOracle(rects, free)
    for _ in range(40):
        p, q = rng.choice(free), rng.choice(free)
        path = idx.shortest_path(p, q)
        assert_valid_path(idx, path, p, q, oracle.dist(p, q))


@pytest.mark.parametrize("mode", WORKLOAD_MODES)
def test_fuzz_rect_scene_engines_agree(mode):
    """The cross-engine differential harness on the paper's own rect
    scenes (the polygon suite covers the decomposed families)."""
    rects = random_disjoint_rects(12, seed=77, mode=mode)
    assert_engines_agree(list(rects), seed=77, label=f"rect-{mode}")
