"""Tests for the CLI entry point and the workload generators."""

import json

import pytest

from repro.__main__ import main
from repro.errors import GeometryError
from repro.geometry.primitives import validate_disjoint
from repro.workloads.fixtures import (
    paper_figure_scene,
    ring_of_rects,
    three_shelves,
    two_clusters,
)
from repro.workloads.generators import (
    WORKLOAD_MODES,
    random_container_polygon,
    random_disjoint_rects,
    random_free_points,
    staircase_container,
)


class TestGenerators:
    @pytest.mark.parametrize("mode", WORKLOAD_MODES)
    def test_modes_produce_valid_scenes(self, mode):
        rects = random_disjoint_rects(30, seed=1, mode=mode)
        assert len(rects) == 30
        validate_disjoint(rects)

    @pytest.mark.parametrize("mode", WORKLOAD_MODES)
    def test_distinct_coordinates(self, mode):
        rects = random_disjoint_rects(25, seed=2, mode=mode)
        xs = [x for r in rects for x in (r.xlo, r.xhi)]
        ys = [y for r in rects for y in (r.ylo, r.yhi)]
        assert len(set(xs)) == len(xs)
        assert len(set(ys)) == len(ys)

    def test_deterministic_per_seed(self):
        a = random_disjoint_rects(15, seed=9)
        b = random_disjoint_rects(15, seed=9)
        c = random_disjoint_rects(15, seed=10)
        assert a == b
        assert a != c

    def test_unknown_mode(self):
        with pytest.raises(GeometryError):
            random_disjoint_rects(5, mode="galactic")

    def test_free_points_avoid_interiors(self):
        rects = random_disjoint_rects(20, seed=4)
        pts = random_free_points(rects, 30, seed=4)
        assert len(pts) == len(set(pts)) == 30
        for p in pts:
            assert not any(r.contains_interior(p) for r in rects)

    def test_container_polygon_contains(self):
        rects = random_disjoint_rects(10, seed=5)
        poly = random_container_polygon(rects, seed=5)
        for r in rects:
            assert poly.contains_rect(r)

    @pytest.mark.parametrize("steps", [1, 8, 40])
    def test_staircase_container_vertex_count_scales(self, steps):
        rects = random_disjoint_rects(8, seed=6)
        poly = staircase_container(rects, steps=steps, margin=2 * steps + 6)
        for r in rects:
            assert poly.contains_rect(r)
        if steps >= 8:
            assert poly.size >= 4 * steps

    def test_tiny_scene(self):
        rects = random_disjoint_rects(2, seed=7)
        assert len(rects) == 2
        validate_disjoint(rects)


class TestFixtures:
    def test_fixture_scenes_valid(self):
        for scene in (two_clusters(), three_shelves(), ring_of_rects()):
            validate_disjoint(scene)

    def test_all_figure_fixtures(self):
        for k in range(1, 15):
            validate_disjoint(paper_figure_scene(k))

    def test_unknown_figure_fixture(self):
        with pytest.raises(ValueError):
            paper_figure_scene(99)


class TestCLI:
    def test_demo(self, capsys):
        assert main(["demo", "-n", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out and "length" in out

    def test_query_roundtrip(self, tmp_path, capsys):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[2, 2, 4, 8], [6, 0, 9, 5]]}))
        assert main(["query", str(scene), "0,0", "11,7", "--path"]) == 0
        out = capsys.readouterr().out
        assert "length = 18" in out
        assert "path   =" in out

    def test_query_bad_point(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[0, 0, 1, 1]]}))
        with pytest.raises(SystemExit):
            main(["query", str(scene), "zero", "1,1"])

    def test_query_bad_scene(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"boxes": []}))
        with pytest.raises(SystemExit):
            main(["query", str(scene), "0,0", "1,1"])

    def test_figures_single(self, capsys):
        assert main(["figures", "6"]) == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_bench_info(self, tmp_path, capsys):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[0, 0, 2, 2], [5, 5, 8, 8]]}))
        assert main(["bench-info", str(scene)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
