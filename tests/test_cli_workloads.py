"""Tests for the CLI entry point and the workload generators."""

import json

import pytest

from repro.__main__ import main
from repro.errors import GeometryError
from repro.geometry.primitives import validate_disjoint
from repro.workloads.fixtures import (
    paper_figure_scene,
    ring_of_rects,
    three_shelves,
    two_clusters,
)
from repro.workloads.generators import (
    WORKLOAD_MODES,
    random_container_polygon,
    random_disjoint_rects,
    random_free_points,
    staircase_container,
)


class TestGenerators:
    @pytest.mark.parametrize("mode", WORKLOAD_MODES)
    def test_modes_produce_valid_scenes(self, mode):
        rects = random_disjoint_rects(30, seed=1, mode=mode)
        assert len(rects) == 30
        validate_disjoint(rects)

    @pytest.mark.parametrize("mode", WORKLOAD_MODES)
    def test_distinct_coordinates(self, mode):
        rects = random_disjoint_rects(25, seed=2, mode=mode)
        xs = [x for r in rects for x in (r.xlo, r.xhi)]
        ys = [y for r in rects for y in (r.ylo, r.yhi)]
        assert len(set(xs)) == len(xs)
        assert len(set(ys)) == len(ys)

    def test_deterministic_per_seed(self):
        a = random_disjoint_rects(15, seed=9)
        b = random_disjoint_rects(15, seed=9)
        c = random_disjoint_rects(15, seed=10)
        assert a == b
        assert a != c

    def test_unknown_mode(self):
        with pytest.raises(GeometryError):
            random_disjoint_rects(5, mode="galactic")

    def test_free_points_avoid_interiors(self):
        rects = random_disjoint_rects(20, seed=4)
        pts = random_free_points(rects, 30, seed=4)
        assert len(pts) == len(set(pts)) == 30
        for p in pts:
            assert not any(r.contains_interior(p) for r in rects)

    def test_container_polygon_contains(self):
        rects = random_disjoint_rects(10, seed=5)
        poly = random_container_polygon(rects, seed=5)
        for r in rects:
            assert poly.contains_rect(r)

    @pytest.mark.parametrize("steps", [1, 8, 40])
    def test_staircase_container_vertex_count_scales(self, steps):
        rects = random_disjoint_rects(8, seed=6)
        poly = staircase_container(rects, steps=steps, margin=2 * steps + 6)
        for r in rects:
            assert poly.contains_rect(r)
        if steps >= 8:
            assert poly.size >= 4 * steps

    def test_tiny_scene(self):
        rects = random_disjoint_rects(2, seed=7)
        assert len(rects) == 2
        validate_disjoint(rects)


class TestFixtures:
    def test_fixture_scenes_valid(self):
        for scene in (two_clusters(), three_shelves(), ring_of_rects()):
            validate_disjoint(scene)

    def test_all_figure_fixtures(self):
        for k in range(1, 15):
            validate_disjoint(paper_figure_scene(k))

    def test_unknown_figure_fixture(self):
        with pytest.raises(ValueError):
            paper_figure_scene(99)


class TestCLI:
    def test_demo(self, capsys):
        assert main(["demo", "-n", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out and "length" in out

    def test_query_roundtrip(self, tmp_path, capsys):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[2, 2, 4, 8], [6, 0, 9, 5]]}))
        assert main(["query", str(scene), "0,0", "11,7", "--path"]) == 0
        out = capsys.readouterr().out
        assert "length = 18" in out
        assert "path   =" in out

    def test_query_bad_point(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[0, 0, 1, 1]]}))
        with pytest.raises(SystemExit):
            main(["query", str(scene), "zero", "1,1"])

    def test_query_bad_scene(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"boxes": []}))
        with pytest.raises(SystemExit):
            main(["query", str(scene), "0,0", "1,1"])

    def test_figures_single(self, capsys):
        assert main(["figures", "6"]) == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_bench_info(self, tmp_path, capsys):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"rects": [[0, 0, 2, 2], [5, 5, 8, 8]]}))
        assert main(["bench-info", str(scene)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out


class TestPolygonGenerators:
    def test_polygon_scene_deterministic_and_disjoint(self):
        from repro.core.api import split_obstacles
        from repro.workloads.generators import random_polygon_scene

        a = random_polygon_scene(2, 3, seed=12)
        b = random_polygon_scene(2, 3, seed=12)
        assert [getattr(o, "loop", o) for o in a] == [getattr(o, "loop", o) for o in b]
        _, polys, all_rects, seams = split_obstacles(a)
        assert len(polys) == 2
        validate_disjoint(all_rects)
        assert seams, "polygon scenes should exercise seams"

    def test_demo_with_polygons(self, capsys):
        assert main(["demo", "-n", "2", "--polygons", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "after decomposition" in out and "%" in out  # polygon outline


class TestSceneSchemaV2:
    def _scene_v2(self):
        return {
            "version": 2,
            "rects": [[20, 0, 24, 4]],
            "polygons": [
                [[0, 0], [10, 0], [10, 10], [6, 10], [6, 4], [4, 4], [4, 10], [0, 10]]
            ],
        }

    def test_query_v2_scene_with_polygon(self, tmp_path, capsys):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps(self._scene_v2()))
        # crossing over the U: must round the arms, not run the seams
        assert main(["query", str(scene), "0,12", "12,0", "--path"]) == 0
        out = capsys.readouterr().out
        assert "length = 24" in out

    def test_v2_snapshot_roundtrip_cli(self, tmp_path, capsys):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps(self._scene_v2()))
        snap = tmp_path / "scene.rsp"
        assert main(["snapshot", str(scene), str(snap)]) == 0
        capsys.readouterr()
        assert main(["query", str(snap), "0,12", "12,0"]) == 0
        assert "length = 24" in capsys.readouterr().out

    def test_v2_bad_polygon_one_line_error(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(
            json.dumps({"version": 2, "rects": [], "polygons": [[[0, 0], [5, 5], [0, 5], [0, 1]]]})
        )
        with pytest.raises(SystemExit, match="invalid scene"):
            main(["query", str(scene), "0,0", "1,1"])

    def test_v2_overlapping_polygon_rect_rejected(self, tmp_path):
        data = self._scene_v2()
        data["rects"] = [[1, 1, 3, 3]]  # inside the U's left arm
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps(data))
        with pytest.raises(SystemExit, match="invalid scene"):
            main(["query", str(scene), "0,12", "12,0"])

    def test_non_convex_container_one_line_error(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(
            json.dumps(
                {
                    "version": 2,
                    "rects": [[1, 1, 3, 3]],
                    "container": [
                        [0, 0], [10, 0], [10, 10], [6, 10],
                        [6, 4], [4, 4], [4, 10], [0, 10],
                    ],
                }
            )
        )
        with pytest.raises(SystemExit, match="convex"):
            main(["query", str(scene), "1,0", "3,0"])

    def test_unknown_schema_version_rejected(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps({"version": 7, "rects": [[0, 0, 1, 1]]}))
        with pytest.raises(SystemExit, match="version"):
            main(["query", str(scene), "5,5", "6,6"])

    def test_v1_scene_with_polygons_rejected(self, tmp_path):
        data = self._scene_v2()
        del data["version"]
        scene = tmp_path / "scene.json"
        scene.write_text(json.dumps(data))
        with pytest.raises(SystemExit, match="v1"):
            main(["query", str(scene), "0,12", "12,0"])

    def test_scene_dict_roundtrip(self):
        from repro.workloads.generators import random_polygon_scene
        from repro.workloads.scenefile import scene_from_dict, scene_to_dict

        obstacles = random_polygon_scene(2, 2, seed=5)
        data = scene_to_dict(obstacles)
        back, container = scene_from_dict(json.loads(json.dumps(data)))
        assert container is None
        # order normalizes to rects-then-polygons; content is exact
        def split(obs):
            rects = sorted(o for o in obs if not hasattr(o, "loop"))
            loops = [o.loop for o in obs if hasattr(o, "loop")]
            return rects, loops

        assert split(back) == split(obstacles)


class TestFuzzVerb:
    def test_fuzz_smoke_passes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fuzz", "--scenes", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
        assert not list(tmp_path.glob("fuzz_fail_*.json"))
