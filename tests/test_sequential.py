"""Validation of the §9 sequential engine against the oracle and the
parallel engine (three-way agreement)."""

import numpy as np
import pytest

from repro.core.allpairs import ParallelEngine
from repro.core.baseline import GridOracle
from repro.core.sequential import SequentialEngine, build_sequential_index
from repro.errors import GeometryError
from repro.geometry.primitives import Rect, dist
from repro.pram import PRAM
from repro.workloads.generators import (
    WORKLOAD_MODES,
    random_disjoint_rects,
    random_free_points,
)


def assert_seq_matches_oracle(rects, extra=()):
    engine = SequentialEngine(rects, extra)
    idx = engine.build()
    oracle = GridOracle(rects, idx.points)
    want = oracle.dist_matrix(idx.points)
    got = idx.matrix
    bad = np.argwhere(got != want)
    assert bad.size == 0, (
        f"{len(bad)} mismatches; first: {idx.points[bad[0][0]]}->"
        f"{idx.points[bad[0][1]]} got {got[tuple(bad[0])]} want {want[tuple(bad[0])]}"
    )
    return idx


class TestSequentialSmall:
    def test_single_rect(self):
        idx = assert_seq_matches_oracle([Rect(0, 0, 4, 6)])
        assert idx.length((0, 0), (4, 6)) == 10
        assert idx.length((0, 0), (4, 0)) == 4

    def test_detour_around_wall(self):
        rects = [Rect(4, -10, 6, 10)]
        idx = assert_seq_matches_oracle(rects, extra=[(0, 0), (10, 0)])
        assert idx.length((0, 0), (10, 0)) == 10 + 20

    def test_two_walls_maze(self):
        rects = [Rect(2, -12, 4, 8), Rect(8, -8, 10, 12)]
        assert_seq_matches_oracle(rects, extra=[(0, 0), (14, 0)])

    def test_extra_point_inside_rejected(self):
        with pytest.raises(GeometryError):
            SequentialEngine([Rect(0, 0, 4, 4)], [(1, 1)])

    def test_single_source_profile(self):
        rects = random_disjoint_rects(15, seed=4)
        engine = SequentialEngine(rects)
        src = rects[0].sw
        d = engine.single_source(src)
        oracle = GridOracle(rects, engine.points)
        for i, p in enumerate(engine.points):
            assert d[i] == oracle.dist(src, p), p


class TestSequentialRandom:
    @pytest.mark.parametrize("seed", range(8))
    def test_uniform(self, seed):
        rects = random_disjoint_rects(18, seed=seed)
        assert_seq_matches_oracle(rects)

    @pytest.mark.parametrize("mode", WORKLOAD_MODES)
    def test_workloads(self, mode):
        rects = random_disjoint_rects(20, seed=7, mode=mode)
        assert_seq_matches_oracle(rects)

    @pytest.mark.parametrize("seed", range(3))
    def test_with_extra_points(self, seed):
        rects = random_disjoint_rects(14, seed=seed)
        extra = random_free_points(rects, 8, seed=seed + 9)
        assert_seq_matches_oracle(rects, extra=extra)


class TestThreeWayAgreement:
    """§9 engine == §5/§6 engine == oracle, exactly."""

    @pytest.mark.parametrize("seed", range(5))
    def test_engines_agree(self, seed):
        rects = random_disjoint_rects(22, seed=seed + 50)
        seq = SequentialEngine(rects).build()
        par = ParallelEngine(rects, [], PRAM(), leaf_size=4).build()
        pts = seq.points
        sub = par.submatrix(pts)
        assert (sub == seq.matrix).all()

    def test_convenience_wrapper(self):
        rects = random_disjoint_rects(8, seed=1)
        idx = build_sequential_index(rects)
        v = rects[0].ne
        assert idx.length(v, v) == 0


class TestMonotoneDagProperties:
    def test_lower_bound(self):
        rects = random_disjoint_rects(16, seed=12)
        idx = SequentialEngine(rects).build()
        for i, p in enumerate(idx.points):
            for j, q in enumerate(idx.points):
                assert idx.matrix[i, j] >= dist(p, q)

    def test_all_finite(self):
        # disjoint rectangles never disconnect the plane
        rects = random_disjoint_rects(25, seed=3)
        idx = SequentialEngine(rects).build()
        assert np.isfinite(idx.matrix).all()
