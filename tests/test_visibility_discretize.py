"""Tests for B(Q) extraction (Definition 1) and the Discretization Lemma."""

import pytest

from repro.core.discretize import DiscretizedBoundary
from repro.core.baseline import GridOracle
from repro.core.sequential import SequentialEngine
from repro.errors import QueryError
from repro.geometry.envelope import envelope
from repro.geometry.polygon import rect_polygon
from repro.geometry.primitives import Rect, bbox_of_rects
from repro.geometry.visibility import boundary_points
from repro.workloads.generators import random_disjoint_rects


class TestBoundarySet:
    def test_square_region_no_obstacles(self):
        poly = rect_polygon(0, 0, 10, 10)
        bset = boundary_points(poly, [])
        # just the 4 polygon vertices
        assert set(bset.points) == {(0, 0), (10, 0), (10, 10), (0, 10)}
        assert bset.perimeter == 40

    def test_single_obstacle_projections(self):
        poly = rect_polygon(0, 0, 10, 10)
        rects = [Rect(4, 4, 6, 6)]
        bset = boundary_points(poly, rects)
        # each obstacle corner projects horizontally and vertically
        assert (4, 0) in bset.points and (6, 0) in bset.points
        assert (4, 10) in bset.points and (6, 10) in bset.points
        assert (0, 4) in bset.points and (0, 6) in bset.points
        assert (10, 4) in bset.points and (10, 6) in bset.points

    def test_blocked_projection_absent(self):
        poly = rect_polygon(0, 0, 20, 10)
        # the wall hides the small block from the west boundary
        rects = [Rect(4, 2, 6, 8), Rect(10, 4, 12, 6)]
        bset = boundary_points(poly, rects)
        assert (0, 2) in bset.points  # wall's own projection
        # block's westward view at y=4..6 is blocked by the wall: the only
        # (0, 5)-ish points must come from the wall, not the block
        assert (0, 5) not in bset.points

    def test_linear_size_bound(self):
        rects = random_disjoint_rects(20, seed=3)
        env = envelope(rects)
        bset = boundary_points(env, rects)
        assert len(bset) <= 8 * len(rects) + 2 * len(env.vertices_loop())

    def test_circular_ordering_is_sorted(self):
        rects = random_disjoint_rects(12, seed=4)
        env = envelope(rects)
        bset = boundary_points(env, rects)
        assert bset.positions == sorted(bset.positions)
        assert len(set(bset.positions)) == len(bset.positions)

    def test_neighbors_of_member_is_itself(self):
        poly = rect_polygon(0, 0, 10, 10)
        bset = boundary_points(poly, [Rect(4, 4, 6, 6)])
        assert bset.neighbors((4, 0)) == ((4, 0), (4, 0))

    def test_neighbors_of_gap_point(self):
        poly = rect_polygon(0, 0, 10, 10)
        bset = boundary_points(poly, [Rect(4, 4, 6, 6)])
        v, w = bset.neighbors((5, 0))
        assert bset.boundary_pos(v) is not None
        assert v != (5, 0) and w != (5, 0)
        assert v[1] == 0 and w[1] == 0

    def test_non_boundary_point_raises(self):
        poly = rect_polygon(0, 0, 10, 10)
        bset = boundary_points(poly, [])
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            bset.neighbors((5, 5))


class TestDiscretization:
    def build(self, rects, poly):
        bset = boundary_points(poly, rects)
        pockets = []
        from repro.geometry.polygon import pockets_to_rects

        pockets = pockets_to_rects(poly)
        idx = SequentialEngine(rects + pockets, extra_points=bset.points).build()
        return bset, DiscretizedBoundary(bset, idx)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_oracle_on_boundary_pairs(self, seed):
        rects = random_disjoint_rects(8, seed=seed)
        xlo, ylo, xhi, yhi = bbox_of_rects(rects)
        poly = rect_polygon(xlo - 5, ylo - 5, xhi + 5, yhi + 5)
        bset, disc = self.build(rects, poly)
        # arbitrary (non-B) boundary points: edge midpoints of the container
        probes = [
            ((xlo - 5 + xhi + 5) // 2, ylo - 5),
            ((xlo - 5 + xhi + 5) // 2, yhi + 5),
            (xlo - 5, (ylo - 5 + yhi + 5) // 2),
            (xhi + 5, (ylo - 5 + yhi + 5) // 2),
        ] + bset.points[::5]
        oracle = GridOracle(rects, probes)
        for i, p in enumerate(probes):
            for q in probes[i + 1 :: 2]:
                assert disc.length(p, q) == oracle.dist(p, q), (p, q)

    def test_same_point(self):
        rects = [Rect(2, 2, 4, 4)]
        poly = rect_polygon(0, 0, 6, 6)
        _, disc = self.build(rects, poly)
        assert disc.length((3, 0), (3, 0)) == 0

    def test_visible_pair_is_l1(self):
        rects = [Rect(2, 2, 4, 4)]
        poly = rect_polygon(0, 0, 10, 10)
        _, disc = self.build(rects, poly)
        # east and west boundary see each other above the obstacle
        assert disc.length((0, 7), (10, 8)) == 11

    def test_off_boundary_raises(self):
        rects = [Rect(2, 2, 4, 4)]
        poly = rect_polygon(0, 0, 6, 6)
        _, disc = self.build(rects, poly)
        with pytest.raises(QueryError):
            disc.length((3, 3), (0, 0))

    def test_index_missing_points_rejected(self):
        rects = [Rect(2, 2, 4, 4)]
        poly = rect_polygon(0, 0, 6, 6)
        bset = boundary_points(poly, rects)
        idx = SequentialEngine(rects).build()  # lacks the B(Q) points
        with pytest.raises(QueryError):
            DiscretizedBoundary(bset, idx)
