"""Shared-memory lifecycle tests: publish/attach/unlink under both
``fork`` and ``spawn``, leak detection, and byte-identical crosschecks
between shm-attached workers and in-process indexes."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.api import ShortestPathIndex
from repro.errors import ClusterError
from repro.serve import shm as rshm
from repro.serve.snapshot import save
from repro.serve.store import SceneStore, resident_bytes
from repro.workloads.generators import (
    random_disjoint_rects,
    random_polygon_scene,
)

# -- leak fixture -------------------------------------------------------
@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(rshm.list_segments())
    yield
    leaked = set(rshm.list_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _probe_child(manifest, pairs, queue):
    """Child-process probe (module-level for spawn picklability): attach,
    answer, detach — never unlink."""
    from repro.serve import shm as rshm_child

    idx = rshm_child.attach(manifest)
    queue.put(np.asarray(idx.lengths(pairs)).tobytes())
    idx.shm_handle.close()


def _sample_pairs(idx, stride=3):
    vs = idx.vertices()
    return [(vs[i], vs[-1 - i]) for i in range(0, len(vs), stride)]


class TestPublishAttach:
    def test_zero_copy_read_only_attach(self):
        idx = ShortestPathIndex.build(random_disjoint_rects(8, seed=1))
        with rshm.ShmPublisher() as pub:
            manifest = pub.publish("s", idx)
            att = rshm.attach(manifest)
            mat = att.index.matrix
            assert not mat.flags.owndata  # view into the segment
            assert not mat.flags.writeable
            with pytest.raises((ValueError, OSError)):
                mat[0, 0] = 1.0
            pairs = _sample_pairs(idx)
            assert idx.lengths(pairs).tobytes() == att.lengths(pairs).tobytes()
            assert rshm.is_shm_backed(att) and not rshm.is_shm_backed(idx)
            att.shm_handle.close()

    def test_manifest_is_json_plain(self):
        import json

        idx = ShortestPathIndex.build(random_disjoint_rects(5, seed=2))
        with rshm.ShmPublisher() as pub:
            manifest = pub.publish("s", idx)
            json.dumps(manifest)  # must survive the wire / spawn pickling

    def test_publish_duplicate_scene_rejected(self):
        idx = ShortestPathIndex.build(random_disjoint_rects(4, seed=3))
        with rshm.ShmPublisher() as pub:
            pub.publish("s", idx)
            with pytest.raises(ClusterError, match="already published"):
                pub.publish("s", idx)

    def test_release_unlinks_segment(self):
        idx = ShortestPathIndex.build(random_disjoint_rects(4, seed=4))
        pub = rshm.ShmPublisher()
        manifest = pub.publish("s", idx)
        assert manifest["segment"] in rshm.list_segments()
        pub.release("s")
        assert manifest["segment"] not in rshm.list_segments()
        with pytest.raises(ClusterError, match="not published"):
            pub.manifest("s")
        pub.close()

    def test_attach_after_unlink_is_one_line_error(self):
        idx = ShortestPathIndex.build(random_disjoint_rects(4, seed=5))
        pub = rshm.ShmPublisher()
        manifest = pub.publish("s", idx)
        pub.close()
        with pytest.raises(ClusterError, match="does not exist") as exc:
            rshm.attach(manifest)
        assert "\n" not in str(exc.value)

    def test_bad_manifest_rejected(self):
        with pytest.raises(ClusterError, match="manifest"):
            rshm.attach({"format": "something-else"})
        with pytest.raises(ClusterError, match="version"):
            rshm.attach({"format": "repro-shm", "version": 99})

    def test_close_is_idempotent(self):
        idx = ShortestPathIndex.build(random_disjoint_rects(4, seed=6))
        pub = rshm.ShmPublisher()
        pub.publish("s", idx)
        pub.close()
        pub.close()
        with pytest.raises(ClusterError, match="closed"):
            pub.publish("t", idx)

    def test_same_index_shares_one_refcounted_segment(self):
        """Publishing one built index under many scene names must alias
        a single segment (this is the bench_cluster RSS sweep's shape);
        the segment unlinks only when the last name is released."""
        idx = ShortestPathIndex.build(random_disjoint_rects(6, seed=21))
        pairs = _sample_pairs(idx)
        pub = rshm.ShmPublisher()
        manifests = [pub.publish(f"c{i}", idx) for i in range(3)]
        assert len({m["segment"] for m in manifests}) == 1
        assert len(rshm.list_segments()) == 1
        att = rshm.attach(manifests[2])
        assert idx.lengths(pairs).tobytes() == att.lengths(pairs).tobytes()
        att.shm_handle.close()
        pub.release("c0")
        pub.release("c1")
        assert len(rshm.list_segments()) == 1  # still one name left
        pub.release("c2")
        assert rshm.list_segments() == []
        # a fresh publish after full release starts a fresh segment
        pub.publish("again", idx)
        assert len(rshm.list_segments()) == 1
        pub.close()

    def test_distinct_indexes_get_distinct_segments(self):
        a = ShortestPathIndex.build(random_disjoint_rects(4, seed=22))
        b = ShortestPathIndex.build(random_disjoint_rects(4, seed=23))
        with rshm.ShmPublisher() as pub:
            ma = pub.publish("a", a)
            mb = pub.publish("b", b)
            assert ma["segment"] != mb["segment"]

    def test_publish_snapshot_raw_and_npz(self, tmp_path):
        idx = ShortestPathIndex.build(random_disjoint_rects(7, seed=7))
        raw = save(idx, tmp_path / "r.rsp", layout="raw")
        npz = save(idx, tmp_path / "n.rsp", layout="npz")
        pairs = _sample_pairs(idx)
        with rshm.ShmPublisher() as pub:
            for name, path in (("raw", raw), ("npz", npz)):
                att = rshm.attach(pub.publish_snapshot(name, path))
                assert idx.lengths(pairs).tobytes() == att.lengths(pairs).tobytes()
                att.shm_handle.close()

    def test_polygon_scene_attach_keeps_solid_semantics(self):
        obstacles = random_polygon_scene(2, 2, seed=8)
        idx = ShortestPathIndex.build(obstacles)
        with rshm.ShmPublisher() as pub:
            att = rshm.attach(pub.publish("p", idx))
            assert att.seams == idx.seams
            pairs = _sample_pairs(idx, stride=5)
            assert idx.lengths(pairs).tobytes() == att.lengths(pairs).tobytes()
            from repro.errors import QueryError

            # a strictly interior seam point must still be rejected
            tall = [s for s in idx.seams if s.yhi - s.ylo >= 2]
            assert tall, "scene generator produced no seam with interior room"
            seam = tall[0]
            with pytest.raises(QueryError):
                att.length((seam.x, (seam.ylo + seam.yhi) // 2), idx.vertices()[0])
            att.shm_handle.close()


class TestChildProcesses:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_child_attach_byte_identical(self, method):
        """The crosscheck the cluster relies on: a worker attached from
        shared memory answers byte-for-byte what the in-process index
        answers, under both start methods."""
        idx = ShortestPathIndex.build(random_disjoint_rects(9, seed=10))
        pairs = _sample_pairs(idx)
        with rshm.ShmPublisher() as pub:
            manifest = pub.publish("s", idx)
            ctx = mp.get_context(method)
            queue = ctx.Queue()
            proc = ctx.Process(target=_probe_child, args=(manifest, pairs, queue))
            proc.start()
            got = queue.get(timeout=60)
            proc.join(timeout=60)
            assert proc.exitcode == 0
            assert got == np.asarray(idx.lengths(pairs)).tobytes()

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_many_children_share_one_segment(self, method):
        idx = ShortestPathIndex.build(random_disjoint_rects(6, seed=11))
        pairs = _sample_pairs(idx)
        want = np.asarray(idx.lengths(pairs)).tobytes()
        with rshm.ShmPublisher() as pub:
            manifest = pub.publish("s", idx)
            ctx = mp.get_context(method)
            queue = ctx.Queue()
            procs = [
                ctx.Process(target=_probe_child, args=(manifest, pairs, queue))
                for _ in range(3)
            ]
            for p in procs:
                p.start()
            results = [queue.get(timeout=60) for _ in procs]
            for p in procs:
                p.join(timeout=60)
                assert p.exitcode == 0
            assert all(r == want for r in results)
            # exactly one segment despite three attachments
            assert len(rshm.list_segments()) == 1

    def test_fuzz_scene_crosscheck(self):
        """Mixed rect+polygon fuzz scenes: shm-attached answers equal the
        in-process ShortestPathIndex exactly (lengths are bit-identical
        doubles, not approximately equal)."""
        for seed in (1, 2):
            obstacles = random_polygon_scene(1, 3, seed=seed)
            idx = ShortestPathIndex.build(obstacles)
            pairs = _sample_pairs(idx, stride=4)
            with rshm.ShmPublisher() as pub:
                manifest = pub.publish(f"f{seed}", idx)
                ctx = mp.get_context("fork")
                queue = ctx.Queue()
                proc = ctx.Process(
                    target=_probe_child, args=(manifest, pairs, queue)
                )
                proc.start()
                got = queue.get(timeout=60)
                proc.join(timeout=60)
                assert got == np.asarray(idx.lengths(pairs)).tobytes()


class TestStoreIntegration:
    def test_resident_bytes_discounts_shared_matrix(self):
        idx = ShortestPathIndex.build(random_disjoint_rects(8, seed=12))
        with rshm.ShmPublisher() as pub:
            att = rshm.attach(pub.publish("s", idx))
            assert resident_bytes(att) < resident_bytes(idx)
            assert resident_bytes(att) < idx.index.matrix.nbytes
            att.shm_handle.close()

    def test_store_evicts_and_reattaches(self):
        idx = ShortestPathIndex.build(random_disjoint_rects(6, seed=13))
        pairs = _sample_pairs(idx)
        with rshm.ShmPublisher() as pub:
            manifest = pub.publish("s", idx)
            from repro.serve.shm import attach

            store = SceneStore()
            store.add_builder("s", lambda: attach(manifest))
            first = store.get("s")
            assert store.evict("s")
            second = store.get("s")
            assert second is not first
            assert idx.lengths(pairs).tobytes() == second.lengths(pairs).tobytes()
            assert store.stats()["builds"] == 2
