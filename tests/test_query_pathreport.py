"""Validation of §6.4 arbitrary-point queries and §8 path reporting.

Path validity goes through the shared ``tests/harness.py`` toolkit
(rectilinear, endpoint-correct, obstacle-interior-free, exact length)
instead of ad-hoc clear/length asserts.
"""

import pytest

from harness import assert_engines_agree, assert_valid_path, assert_valid_path_raw
from repro.core.allpairs import ParallelEngine
from repro.core.api import ShortestPathIndex
from repro.core.baseline import GridOracle
from repro.core.pathreport import PathReporter
from repro.core.query import QueryStructure
from repro.core.sequential import SequentialEngine
from repro.errors import QueryError
from repro.geometry.primitives import Rect
from repro.pram import PRAM
from repro.workloads.generators import (
    random_container_polygon,
    random_disjoint_rects,
    random_free_points,
)


def build_setup(n, seed, extra=0):
    rects = random_disjoint_rects(n, seed=seed)
    idx = SequentialEngine(rects).build()
    return rects, idx


class TestQueryStructure:
    def test_vertex_pairs_are_matrix_lookups(self):
        rects, idx = build_setup(12, 1)
        qs = QueryStructure(rects, idx, PRAM())
        for r in rects[:4]:
            for r2 in rects[4:8]:
                assert qs.length(r.sw, r2.ne) == idx.length(r.sw, r2.ne)

    @pytest.mark.parametrize("seed", range(6))
    def test_arbitrary_pairs_match_oracle(self, seed):
        rects = random_disjoint_rects(15, seed=seed)
        idx = SequentialEngine(rects).build()
        qs = QueryStructure(rects, idx, PRAM())
        free = random_free_points(rects, 14, seed=seed + 31)
        oracle = GridOracle(rects, free)
        for i in range(0, len(free), 2):
            p, q = free[i], free[i + 1]
            assert qs.length(p, q) == oracle.dist(p, q), (p, q)

    @pytest.mark.parametrize("seed", range(4))
    def test_vertex_to_arbitrary(self, seed):
        rects = random_disjoint_rects(14, seed=seed + 7)
        idx = SequentialEngine(rects).build()
        qs = QueryStructure(rects, idx, PRAM())
        free = random_free_points(rects, 8, seed=seed + 3)
        oracle = GridOracle(rects, free + idx.points)
        for p in free[:4]:
            for r in rects[:5]:
                assert qs.length(p, r.ne) == oracle.dist(p, r.ne), (p, r.ne)
                assert qs.length(r.sw, p) == oracle.dist(r.sw, p), (r.sw, p)

    def test_identical_points(self):
        rects, idx = build_setup(6, 2)
        qs = QueryStructure(rects, idx, PRAM())
        assert qs.length((500, 500), (500, 500)) == 0

    def test_point_inside_obstacle_rejected(self):
        rects = [Rect(0, 0, 4, 4)]
        idx = SequentialEngine(rects).build()
        qs = QueryStructure(rects, idx, PRAM())
        with pytest.raises(QueryError):
            qs.length((2, 2), (10, 10))

    def test_aligned_pairs(self):
        # vertically aligned pair separated by an obstacle
        rects = [Rect(-3, 4, 3, 6)]
        idx = SequentialEngine(rects).build()
        qs = QueryStructure(rects, idx, PRAM())
        oracle = GridOracle(rects, [(0, 0), (0, 10)])
        assert qs.length((0, 0), (0, 10)) == oracle.dist((0, 0), (0, 10)) == 16
        # horizontally aligned, clear view
        assert qs.length((5, 0), (9, 0)) == 4


class TestPathReporter:
    @pytest.mark.parametrize("seed", range(5))
    def test_paths_valid_and_shortest(self, seed):
        rects = random_disjoint_rects(14, seed=seed + 11)
        idx = SequentialEngine(rects).build()
        rep = PathReporter(rects, idx, PRAM())
        pts = idx.points
        for i in range(0, len(pts) - 5, 7):
            p, q = pts[i], pts[i + 5]
            path = rep.path(p, q)
            assert_valid_path_raw(rects, path, p, q, idx.length(p, q))

    def test_trivial_path(self):
        rects, idx = build_setup(5, 3)
        rep = PathReporter(rects, idx, PRAM())
        v = idx.points[0]
        assert rep.path(v, v) == [v]

    def test_segment_count_upper_bounds_path(self):
        rects = random_disjoint_rects(16, seed=4)
        idx = SequentialEngine(rects).build()
        rep = PathReporter(rects, idx, PRAM())
        pts = idx.points
        for i in range(0, len(pts) - 3, 9):
            p, q = pts[i], pts[i + 3]
            path = rep.path(p, q)
            assert len(path) - 1 <= rep.segment_count(p, q)

    def test_unknown_root_rejected(self):
        rects, idx = build_setup(5, 5)
        rep = PathReporter(rects, idx, PRAM())
        with pytest.raises(QueryError):
            rep.path((999, 999), idx.points[0])

    def test_tree_reuse_is_cached(self):
        rects, idx = build_setup(8, 6)
        rep = PathReporter(rects, idx, PRAM())
        t1 = rep.tree(idx.points[0])
        t2 = rep.tree(idx.points[0])
        assert t1 is t2

    def test_metered_reporting_cost(self):
        rects = random_disjoint_rects(20, seed=9)
        idx = SequentialEngine(rects).build()
        pram = PRAM()
        rep = PathReporter(rects, idx, pram)
        p, q = idx.points[0], idx.points[-1]
        before = pram.snapshot()
        rep.path(p, q)
        dt, dw = pram.since(before)
        assert dt > 0 and dw > 0


class TestContainerConfinement:
    """Regression: §8 path assembly used to graze pocket-pocket shared
    edges strictly outside the container polygon ``P`` (the tracing
    reporter only avoids rectangle *interiors*)."""

    def test_seed2_repro_stays_inside_container(self):
        # This exact scene used to report "path ... leaves the container"
        # for both engines before the confinement pass.
        rects = random_disjoint_rects(6, seed=2)
        poly = random_container_polygon(rects, seed=2)
        assert_engines_agree(rects, poly, seed=2, label="confinement")

    @pytest.mark.parametrize("seed", [0, 2, 5, 7])
    def test_shortest_path_never_exits_container(self, seed):
        rects = random_disjoint_rects(8, seed=seed)
        poly = random_container_polygon(rects, seed=seed)
        idx = ShortestPathIndex.build(rects, container=poly)
        pts = [v for r in rects[:4] for v in r.vertices]
        pts += random_free_points(rects, 4, seed=seed + 13)
        pts = [p for p in pts if poly.contains(p)]
        for i in range(0, len(pts) - 1, 2):
            p, q = pts[i], pts[i + 1]
            path = idx.shortest_path(p, q)
            assert all(poly.contains(v) for v in path), (p, q, path)
            assert_valid_path(idx, path, p, q)


class TestCrossValidationAllPairsEngines:
    def test_paths_against_parallel_engine_lengths(self):
        rects = random_disjoint_rects(18, seed=21)
        par = ParallelEngine(rects, [], PRAM(), leaf_size=4).build()
        rep = PathReporter(rects, par, PRAM())
        pts = [r.sw for r in rects[:6]]
        for p in pts[:3]:
            for q in pts[3:]:
                path = rep.path(p, q)
                assert_valid_path_raw(rects, path, p, q, par.length(p, q))
