"""Validation of the §5/§6 parallel engine against the grid oracle."""

import numpy as np
import pytest

from repro.core.allpairs import DistanceIndex, ParallelEngine, build_vertex_index
from repro.core.baseline import GridOracle
from repro.errors import GeometryError, QueryError
from repro.geometry.primitives import Rect, dist
from repro.pram import PRAM
from repro.workloads.generators import (
    WORKLOAD_MODES,
    random_disjoint_rects,
    random_free_points,
)


def assert_matches_oracle(rects, extra=(), leaf_size=6):
    pram = PRAM()
    engine = ParallelEngine(rects, extra, pram, leaf_size=leaf_size)
    idx = engine.build()
    vertices = [v for r in rects for v in r.vertices] + list(extra)
    vertices = list(dict.fromkeys(vertices))
    oracle = GridOracle(rects, vertices)
    want = oracle.dist_matrix(vertices)
    got = idx.submatrix(vertices)
    bad = np.argwhere(got != want)
    assert bad.size == 0, (
        f"{len(bad)} mismatches; first: {vertices[bad[0][0]]}->"
        f"{vertices[bad[0][1]]} got {got[tuple(bad[0])]} want {want[tuple(bad[0])]}"
    )
    return engine, idx


class TestEngineSmall:
    def test_no_obstacles(self):
        idx = ParallelEngine([], [(0, 0), (3, 4)], PRAM()).build()
        assert idx.length((0, 0), (3, 4)) == 7

    def test_single_rect(self):
        assert_matches_oracle([Rect(0, 0, 4, 4)])

    def test_two_rects_detour(self):
        assert_matches_oracle([Rect(0, 0, 2, 10), Rect(6, -5, 8, 5)])

    def test_wall_between_extra_points(self):
        rects = [Rect(4, -20, 6, 20)]
        _, idx = assert_matches_oracle(rects, extra=[(0, 0), (10, 0)])
        assert idx.length((0, 0), (10, 0)) == 10 + 2 * 20

    def test_extra_point_inside_obstacle_rejected(self):
        with pytest.raises(GeometryError):
            ParallelEngine([Rect(0, 0, 4, 4)], [(2, 2)], PRAM())

    def test_unknown_point_query(self):
        idx = ParallelEngine([Rect(0, 0, 1, 1)], [], PRAM()).build()
        with pytest.raises(QueryError):
            idx.length((500, 500), (0, 0))

    def test_diagonal_is_zero_and_symmetric(self):
        rects = random_disjoint_rects(10, seed=0)
        idx = ParallelEngine(rects, [], PRAM()).build()
        m = idx.matrix
        assert (np.diag(m) == 0).all()
        assert (m == m.T).all()


class TestEngineRecursive:
    """Sizes above the leaf threshold: the conquer path is exercised."""

    @pytest.mark.parametrize("seed", range(8))
    def test_uniform_n20(self, seed):
        rects = random_disjoint_rects(20, seed=seed)
        assert_matches_oracle(rects, leaf_size=4)

    @pytest.mark.parametrize("mode", WORKLOAD_MODES)
    def test_all_workloads_n24(self, mode):
        rects = random_disjoint_rects(24, seed=11, mode=mode)
        assert_matches_oracle(rects, leaf_size=4)

    @pytest.mark.parametrize("seed", range(4))
    def test_with_extra_points(self, seed):
        rects = random_disjoint_rects(16, seed=seed)
        extra = random_free_points(rects, 6, seed=seed + 100)
        assert_matches_oracle(rects, extra=extra, leaf_size=4)

    def test_deeper_recursion_n40(self):
        rects = random_disjoint_rects(40, seed=3)
        engine, _ = assert_matches_oracle(rects, leaf_size=4)
        assert engine.stats.nodes > 3  # actually recursed

    def test_lower_bound_and_triangle(self):
        rects = random_disjoint_rects(24, seed=9)
        idx = ParallelEngine(rects, [], PRAM(), leaf_size=4).build()
        m = idx.matrix
        pts = idx.points
        for i in range(0, len(pts), 7):
            for j in range(0, len(pts), 5):
                assert m[i, j] >= dist(pts[i], pts[j])
        # spot-check the triangle inequality
        n = len(pts)
        rng = np.random.default_rng(0)
        for _ in range(200):
            i, j, k = rng.integers(0, n, 3)
            assert m[i, j] <= m[i, k] + m[k, j] + 1e-9


class TestMetering:
    def test_parallel_time_much_smaller_than_work(self):
        pram = PRAM()
        rects = random_disjoint_rects(32, seed=5)
        ParallelEngine(rects, [], pram, leaf_size=4).build()
        assert pram.time > 0
        assert pram.work > 10 * pram.time  # real parallelism in the model

    def test_stats_populated(self):
        pram = PRAM()
        rects = random_disjoint_rects(32, seed=6)
        engine = ParallelEngine(rects, [], pram, leaf_size=4)
        engine.build()
        s = engine.stats
        assert s.nodes >= 3
        assert s.leaves >= 2
        assert s.crossing_candidates > 0
        assert s.max_tracked >= 4 * 4


class TestConvenience:
    def test_build_vertex_index(self):
        rects = random_disjoint_rects(12, seed=2)
        idx = build_vertex_index(rects)
        assert isinstance(idx, DistanceIndex)
        v0 = rects[0].sw
        assert idx.length(v0, v0) == 0
