"""Tests for the CREW-PRAM simulator and parallel primitives."""

import operator

import pytest

from repro.errors import ConcurrentWriteError, PRAMError
from repro.pram import (
    LCA,
    LevelAncestor,
    PRAM,
    SharedArray,
    brent_time,
    euler_tour,
    forest_depths,
    list_rank,
    par_filter,
    par_map,
    parallel_merge,
    parallel_sort,
    pram_scope,
    reduce_par,
    scan,
    speedup_table,
    tree_depths,
)
from repro.pram.brent import processors_for_time


class TestMachine:
    def test_step_accounting(self):
        p = PRAM()
        p.step(10)
        p.step(5)
        assert p.time == 2 and p.work == 15 and p.max_ops == 10

    def test_zero_step_free(self):
        p = PRAM()
        p.step(0)
        assert p.time == 0 and p.work == 0

    def test_negative_rejected(self):
        p = PRAM()
        with pytest.raises(PRAMError):
            p.step(-1)
        with pytest.raises(PRAMError):
            p.charge(time=-1)

    def test_parallel_branches_max_time_sum_work(self):
        p = PRAM()

        def branch_a(m):
            m.step(100)
            return "a"

        def branch_b(m):
            m.step(50)
            m.step(50)
            return "b"

        out = p.parallel([branch_a, branch_b])
        assert out == ["a", "b"]
        assert p.time == 2  # max(1, 2)
        assert p.work == 200

    def test_snapshot_since(self):
        p = PRAM()
        s = p.snapshot()
        p.step(7)
        assert p.since(s) == (1, 7)

    def test_scope_nesting(self):
        from repro.pram.machine import current_pram

        outer, inner = PRAM("o"), PRAM("i")
        with pram_scope(outer):
            assert current_pram() is outer
            with pram_scope(inner):
                assert current_pram() is inner
            assert current_pram() is outer
        assert current_pram() is None


class TestSharedArray:
    def test_crew_violation_detected(self):
        p = PRAM(detect_conflicts=True)
        arr = SharedArray(p, 4)
        p.step(2)
        arr[1] = "x"
        with pytest.raises(ConcurrentWriteError):
            arr[1] = "x"  # same step, same cell — even same value

    def test_writes_in_different_steps_ok(self):
        p = PRAM(detect_conflicts=True)
        arr = SharedArray(p, 4)
        p.step(1)
        arr[1] = "a"
        p.step(1)
        arr[1] = "b"
        assert arr[1] == "b"

    def test_concurrent_reads_allowed(self):
        p = PRAM(detect_conflicts=True)
        arr = SharedArray(p, [7])
        p.step(3)
        assert arr[0] + arr[0] + arr[0] == 21

    def test_detection_off_by_default(self):
        p = PRAM()
        arr = SharedArray(p, 2)
        p.step(2)
        arr[0] = 1
        arr[0] = 2  # no error
        assert arr.tolist() == [2, None]


class TestPrimitives:
    def test_par_map(self):
        p = PRAM()
        assert par_map(lambda x: x * x, [1, 2, 3], p) == [1, 4, 9]
        assert p.time == 1 and p.work == 3

    def test_par_filter(self):
        p = PRAM()
        assert par_filter(lambda x: x % 2 == 0, list(range(10)), p) == [0, 2, 4, 6, 8]

    def test_scan_inclusive_exclusive(self):
        p = PRAM()
        vals = [3, 1, 4, 1, 5]
        assert scan(vals, operator.add, 0, pram=p) == [3, 4, 8, 9, 14]
        assert scan(vals, operator.add, 0, inclusive=False, pram=p) == [0, 3, 4, 8, 9]

    def test_scan_charges_log_time(self):
        p = PRAM()
        scan(list(range(1024)), operator.add, 0, pram=p)
        assert p.time == 10
        assert p.work == 2048

    def test_reduce(self):
        p = PRAM()
        assert reduce_par([5, 2, 9], min, float("inf"), pram=p) == 2

    def test_merge(self):
        p = PRAM()
        assert parallel_merge([1, 4, 6], [2, 3, 7], pram=p) == [1, 2, 3, 4, 6, 7]

    def test_sort_cost_profile(self):
        p = PRAM()
        out = parallel_sort([5, 3, 8, 1], pram=p)
        assert out == [1, 3, 5, 8]
        assert p.time == 2  # ceil(log2 4)
        assert p.work == 8  # n log n


class TestListRankEuler:
    def test_list_rank_chain(self):
        # 0 -> 1 -> 2 -> 3 -> None
        succ = [1, 2, 3, None]
        assert list_rank(succ, PRAM()) == [3, 2, 1, 0]

    def test_list_rank_cycle_detected(self):
        with pytest.raises(PRAMError):
            list_rank([1, 0], PRAM())

    def test_forest_depths(self):
        #      0        5
        #     / \       |
        #    1   2      6
        #    |
        #    3,4
        parents = [None, 0, 0, 1, 1, None, 5]
        assert forest_depths(parents, PRAM()) == [0, 1, 1, 2, 2, 0, 1]

    def test_euler_tour_events_balanced(self):
        children = [[1, 2], [3], [], []]
        tour = euler_tour(children, 0)
        assert len(tour) == 2 * 4
        assert tour[0] == (0, 1) and tour[-1] == (0, -1)

    def test_tree_depths_via_euler(self):
        children = [[1, 2], [3], [], []]
        assert tree_depths(children, 0, PRAM()) == [0, 1, 1, 2]


class TestLevelAncestor:
    def build_random_forest(self, n, seed):
        import random

        rng = random.Random(seed)
        parents = [None]
        for v in range(1, n):
            parents.append(rng.randrange(0, v))
        return parents

    def test_small_tree(self):
        parents = [None, 0, 1, 2, 3]
        la = LevelAncestor(parents, PRAM())
        assert la.query(4, 0) == 4
        assert la.query(4, 1) == 3
        assert la.query(4, 4) == 0
        assert la.root(2) == 0

    def test_query_beyond_root_raises(self):
        la = LevelAncestor([None, 0], PRAM())
        with pytest.raises(PRAMError):
            la.query(1, 5)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_random(self, seed):
        parents = self.build_random_forest(200, seed)
        la = LevelAncestor(parents, PRAM())
        import random

        rng = random.Random(seed + 1)
        for _ in range(300):
            v = rng.randrange(200)
            d = la.depth[v]
            k = rng.randint(0, d)
            u = v
            for _ in range(k):
                u = parents[u]
            assert la.query(v, k) == u

    def test_lca(self):
        #        0
        #      1   2
        #     3 4   5
        parents = [None, 0, 0, 1, 1, 2]
        lca = LCA(LevelAncestor(parents, PRAM()))
        assert lca.query(3, 4) == 1
        assert lca.query(3, 5) == 0
        assert lca.query(3, 3) == 3
        assert lca.query(1, 3) == 1

    def test_lca_different_trees_raises(self):
        parents = [None, None]
        lca = LCA(LevelAncestor(parents, PRAM()))
        with pytest.raises(PRAMError):
            lca.query(0, 1)


class TestBrent:
    def test_brent_time(self):
        assert brent_time(1000, 10, 1) == 1010
        assert brent_time(1000, 10, 100) == 20
        assert brent_time(1000, 10, 10**9) == 11

    def test_brent_invalid(self):
        with pytest.raises(ValueError):
            brent_time(10, 1, 0)

    def test_speedup_table_monotone(self):
        rows = speedup_table(10**6, 100, [1, 2, 4, 8, 16])
        times = [r[1] for r in rows]
        assert times == sorted(times, reverse=True)
        assert rows[0][2] == pytest.approx(1.0)

    def test_processors_for_time(self):
        p = processors_for_time(1000, 10, 20)
        assert brent_time(1000, 10, p) <= 20
        with pytest.raises(ValueError):
            processors_for_time(1000, 50, 20)
