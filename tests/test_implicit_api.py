"""Tests for the §7 implicit structure and the high-level facade."""

import pytest

from repro.core.api import ShortestPathIndex
from repro.core.baseline import GridOracle, path_is_clear, path_length
from repro.core.implicit import ImplicitBoundaryStructure
from repro.errors import QueryError
from repro.geometry.polygon import RectilinearPolygon, rect_polygon
from repro.geometry.primitives import Rect, bbox_of_rects
from repro.pram import PRAM
from repro.workloads.generators import (
    random_container_polygon,
    random_disjoint_rects,
    random_free_points,
)


def big_container(rects, margin=30):
    xlo, ylo, xhi, yhi = bbox_of_rects(rects)
    return rect_polygon(xlo - margin, ylo - margin, xhi + margin, yhi + margin)


class TestImplicitStructure:
    @pytest.mark.parametrize("seed", range(4))
    def test_boundary_to_vertex_matches_oracle(self, seed):
        rects = random_disjoint_rects(10, seed=seed)
        poly = big_container(rects)
        st = ImplicitBoundaryStructure(poly, rects, PRAM())
        boundary_pts = poly.vertices_loop()
        verts = [v for r in rects[:5] for v in r.vertices]
        oracle = GridOracle(rects, boundary_pts + verts)
        for p in boundary_pts:
            for w in verts[:6]:
                assert st.length(p, w) == oracle.dist(p, w), (p, w)

    @pytest.mark.parametrize("seed", range(3))
    def test_boundary_to_boundary_matches_oracle(self, seed):
        rects = random_disjoint_rects(8, seed=seed + 5)
        poly = big_container(rects, margin=12)
        st = ImplicitBoundaryStructure(poly, rects, PRAM())
        pts = poly.vertices_loop()
        # also sample mid-edge boundary points
        extra = [((a[0] + b[0]) // 2, (a[1] + b[1]) // 2)
                 for a, b in zip(pts, pts[1:]) if a[0] == b[0] or a[1] == b[1]]
        sample = pts + extra[:4]
        oracle = GridOracle(rects, sample)
        for i, p in enumerate(sample):
            for q in sample[i + 1 :: 3]:
                assert st.length(p, q) == oracle.dist(p, q), (p, q)

    def test_trivial_pairs_are_l1(self):
        rects = [Rect(10, 10, 14, 14)]
        poly = big_container(rects, margin=20)
        st = ImplicitBoundaryStructure(poly, rects, PRAM())
        # both far above the obstacle: plain L1
        assert st.length((-10, 34), (34, 34)) == 44

    def test_registered_points_independent_of_container_size(self):
        rects = random_disjoint_rects(8, seed=2)
        small = ImplicitBoundaryStructure(big_container(rects, 10), rects, PRAM())
        large = ImplicitBoundaryStructure(big_container(rects, 500), rects, PRAM())
        assert small.registered_points == large.registered_points

    def test_obstacle_outside_container_rejected(self):
        with pytest.raises(QueryError):
            ImplicitBoundaryStructure(
                rect_polygon(0, 0, 10, 10), [Rect(20, 20, 30, 30)], PRAM()
            )

    def test_point_outside_container_rejected(self):
        rects = [Rect(5, 5, 8, 8)]
        poly = big_container(rects, margin=5)
        st = ImplicitBoundaryStructure(poly, rects, PRAM())
        with pytest.raises(QueryError):
            st.length((1000, 1000), rects[0].sw)


class TestShortestPathIndexFacade:
    @pytest.mark.parametrize("engine", ["parallel", "sequential"])
    def test_engines_give_same_answers(self, engine):
        rects = random_disjoint_rects(14, seed=3)
        idx = ShortestPathIndex.build(rects, engine=engine)
        oracle = GridOracle(rects, idx.vertices())
        for p in idx.vertices()[:6]:
            for q in idx.vertices()[-6:]:
                assert idx.length(p, q) == oracle.dist(p, q)

    def test_docstring_example(self):
        idx = ShortestPathIndex.build([Rect(2, 2, 4, 8), Rect(6, 0, 9, 5)])
        assert idx.length((2, 2), (9, 5)) == 10

    def test_arbitrary_point_lengths(self):
        rects = random_disjoint_rects(12, seed=7)
        idx = ShortestPathIndex.build(rects)
        free = random_free_points(rects, 8, seed=1)
        oracle = GridOracle(rects, free)
        for i in range(0, len(free) - 1, 2):
            assert idx.length(free[i], free[i + 1]) == oracle.dist(free[i], free[i + 1])

    def test_vertex_paths(self):
        rects = random_disjoint_rects(12, seed=8)
        idx = ShortestPathIndex.build(rects)
        vs = idx.vertices()
        for p, q in [(vs[0], vs[-1]), (vs[3], vs[-4])]:
            path = idx.shortest_path(p, q)
            assert path[0] == p and path[-1] == q
            assert path_length(path) == idx.length(p, q)
            assert path_is_clear(path, rects)

    def test_arbitrary_paths(self):
        rects = random_disjoint_rects(10, seed=9)
        idx = ShortestPathIndex.build(rects)
        free = random_free_points(rects, 6, seed=2)
        for i in range(0, len(free) - 1, 2):
            p, q = free[i], free[i + 1]
            path = idx.shortest_path(p, q)
            assert path[0] == p and path[-1] == q
            assert path_length(path) == idx.length(p, q)
            assert path_is_clear(path, rects)

    def test_container_constrains_paths(self):
        rects = [Rect(4, 4, 6, 6)]
        container = rect_polygon(0, 0, 10, 10)
        idx = ShortestPathIndex.build(rects, container=container)
        # going around the obstacle must stay inside the box
        d = idx.length((4, 5), (6, 5))
        assert d == 2 + 2 * min(5 - 4, 6 - 5) + 0 or d >= 4  # sanity
        oracle = GridOracle(idx.rects, [(4, 5), (6, 5)])
        assert d == oracle.dist((4, 5), (6, 5))

    def test_container_with_pockets(self):
        rects = random_disjoint_rects(8, seed=4)
        poly = random_container_polygon(rects, seed=4)
        idx = ShortestPathIndex.build(rects, container=poly)
        vs = [v for r in rects[:3] for v in r.vertices]
        oracle = GridOracle(idx.rects, vs)
        for p in vs[:4]:
            for q in vs[-4:]:
                assert idx.length(p, q) == oracle.dist(p, q)

    def test_point_outside_container_rejected(self):
        idx = ShortestPathIndex.build(
            [Rect(2, 2, 3, 3)], container=rect_polygon(0, 0, 8, 8)
        )
        with pytest.raises(QueryError):
            idx.length((100, 100), (2, 2))

    def test_point_inside_obstacle_rejected(self):
        idx = ShortestPathIndex.build([Rect(0, 0, 4, 4)])
        with pytest.raises(QueryError):
            idx.length((2, 2), (6, 6))

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            ShortestPathIndex.build([Rect(0, 0, 1, 1)], engine="quantum")

    def test_build_stats(self):
        rects = random_disjoint_rects(10, seed=5)
        idx = ShortestPathIndex.build(rects)
        t, w = idx.build_stats()
        assert t > 0 and w > 0
