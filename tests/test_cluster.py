"""Tests for the cluster subsystem: HRW routing, the wire protocol,
metrics recorders, the worker request loop, and the full front-end
(micro-batching, ordering, shedding, stats, clean shutdown)."""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cluster import loadgen
from repro.cluster.frontend import ClusterFrontend
from repro.cluster.hashing import assign_worker, assignment, shards
from repro.cluster.protocol import (
    MAX_FRAME,
    decode_body,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from repro.cluster.worker import _WorkerState, memory_info
from repro.core.api import ShortestPathIndex
from repro.errors import ClusterError
from repro.serve import shm as rshm
from repro.obs.recorders import BatchHistogram, LatencyRecorder, percentile
from repro.workloads.generators import random_disjoint_rects


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = set(rshm.list_segments())
    yield
    leaked = set(rshm.list_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


# ----------------------------------------------------------------------
class TestHashing:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 5, 16):
            for scene in ("a", "b", "campus", "vlsi-7"):
                w = assign_worker(scene, n)
                assert 0 <= w < n
                assert w == assign_worker(scene, n)

    def test_spreads_scenes(self):
        names = [f"scene-{i}" for i in range(64)]
        sh = shards(names, 4)
        assert sum(len(s) for s in sh) == 64
        assert all(sh), "64 scenes over 4 workers should hit every worker"

    def test_minimal_disruption_on_worker_removal(self):
        """Dropping the last worker only moves the scenes it owned."""
        names = [f"scene-{i}" for i in range(80)]
        before = assignment(names, 5)
        after = assignment(names, 4)
        for name in names:
            if before[name] != 4:
                assert after[name] == before[name]

    def test_pins_override(self):
        names = ["a", "b", "c"]
        asn = assignment(names, 3, pins={"a": 2})
        assert asn["a"] == 2
        with pytest.raises(ValueError, match="pinned"):
            assign_worker("a", 2, pins={"a": 7})

    def test_needs_a_worker(self):
        with pytest.raises(ValueError):
            assign_worker("a", 0)


# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            msg = {"id": 3, "op": "length", "p": [1, 2], "q": [3, 4]}
            send_frame(a, msg)
            assert recv_frame(b) == msg
            a.close()
            assert recv_frame(b) is None  # clean EOF
        finally:
            b.close()

    def test_oversized_frame_refused(self):
        with pytest.raises(ClusterError, match="MAX_FRAME"):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_non_object_frame_refused(self):
        with pytest.raises(ClusterError, match="object"):
            decode_body(b"[1, 2, 3]")
        with pytest.raises(ClusterError, match="undecodable"):
            decode_body(b"not json")

    def test_mid_frame_close(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"id": 1})[:3])  # truncated prefix
            a.close()
            with pytest.raises(ClusterError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_async_round_trip(self):
        async def run():
            rsock, wsock = socket.socketpair()
            reader, writer = await asyncio.open_connection(sock=rsock)
            _, wwriter = await asyncio.open_connection(sock=wsock)
            await write_frame(wwriter, {"op": "ping"})
            got = await read_frame(reader)
            wwriter.close()
            writer.close()
            return got

        assert asyncio.run(run()) == {"op": "ping"}


# ----------------------------------------------------------------------
class TestMetrics:
    def test_percentile_matches_numpy(self):
        vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (50, 95, 99, 0, 100):
            assert percentile(vals, q) == pytest.approx(np.percentile(vals, q))
        assert np.isnan(percentile([], 50))

    def test_latency_recorder_summary_keys(self):
        rec = LatencyRecorder()
        rec.extend([0.001, 0.002, 0.010])
        s = rec.summary()
        assert set(s) == {"count", "mean_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"}
        assert s["count"] == 3
        assert s["p50_ms"] == pytest.approx(2.0)
        assert s["max_ms"] == pytest.approx(10.0)

    def test_latency_recorder_reservoir_bounds_memory(self):
        rec = LatencyRecorder(capacity=64)
        rec.extend([0.001] * 1000)
        assert rec.count == 1000
        assert len(rec._samples) == 64
        assert rec.summary()["p99_ms"] == pytest.approx(1.0)

    def test_batch_histogram_and_merge(self):
        h = BatchHistogram()
        for size in (1, 2, 2, 4, 7, 64):
            h.observe(size)
        assert h.as_dict() == {"1": 1, "2": 2, "3-4": 1, "5-8": 1, "33-64": 1}
        other = BatchHistogram()
        other.merge(h.as_dict())
        assert other.as_dict() == h.as_dict()
        with pytest.raises(ValueError):
            h.observe(0)

    def test_batch_histogram_mean_survives_merge(self):
        # merged histograms credit items at the bucket upper bound: an
        # upper estimate, never the old items-stuck-at-zero underestimate
        h = BatchHistogram()
        h.observe(8)
        assert h.mean() == 8.0
        merged = BatchHistogram()
        merged.merge(h.as_dict())
        assert merged.mean() == 8.0  # "5-8" credited at 8
        merged.merge({"3-4": 2})
        assert merged.mean() == pytest.approx((8 + 4 + 4) / 3)


# ----------------------------------------------------------------------
def _build_spec(name, rects, engine="parallel"):
    from repro.scene import Scene

    return {
        "name": name,
        "kind": "build",
        "scene": Scene.from_obstacles(rects).to_dict(),
        "engine": engine,
    }


class TestWorkerState:
    @pytest.fixture()
    def state(self):
        rects = random_disjoint_rects(6, seed=1)
        st = _WorkerState(0, [_build_spec("a", rects)], {})
        idx = ShortestPathIndex.build(rects)
        return st, idx

    def test_mixed_batch(self, state):
        st, idx = state
        vs = idx.vertices()
        batch = [
            {"op": "length", "scene": "a", "p": list(vs[0]), "q": list(vs[-1])},
            {
                "op": "lengths",
                "scene": "a",
                "pairs": [[list(vs[1]), list(vs[-2])], [list(vs[2]), list(vs[-3])]],
            },
            {"op": "path", "scene": "a", "p": list(vs[0]), "q": list(vs[-1])},
            {"op": "ping"},
        ]
        out = st.answer_batch(batch)
        assert all(r["ok"] for r in out)
        assert out[0]["result"] == idx.length(vs[0], vs[-1])
        assert out[1]["result"] == [
            idx.length(vs[1], vs[-2]),
            idx.length(vs[2], vs[-3]),
        ]
        got_path = [tuple(p) for p in out[2]["result"]]
        assert got_path == idx.shortest_path(vs[0], vs[-1])
        assert out[3]["result"] == "pong"

    def test_poisoned_request_fails_alone(self, state):
        st, idx = state
        vs = idx.vertices()
        batch = [
            {"op": "length", "scene": "a", "p": list(vs[0]), "q": list(vs[-1])},
            {"op": "length", "scene": "ghost", "p": [0, 0], "q": [1, 1]},
            {"op": "length", "scene": "a", "p": list(vs[1]), "q": list(vs[-2])},
        ]
        out = st.answer_batch(batch)
        assert out[0]["ok"] and out[2]["ok"]
        assert not out[1]["ok"] and "unknown scene" in out[1]["error"]
        assert out[0]["result"] == idx.length(vs[0], vs[-1])

    def test_unknown_op(self, state):
        st, _ = state
        out = st.answer_batch([{"op": "teleport", "scene": "a"}])
        assert not out[0]["ok"] and "unknown op" in out[0]["error"]

    def test_malformed_requests_never_escape(self, state):
        """Regression: missing fields (KeyError) and malformed pair lists
        (ValueError) must produce per-request errors, not crash the
        worker loop and take every scene on it down."""
        st, idx = state
        vs = idx.vertices()
        batch = [
            {"op": "length", "scene": "a"},  # no p/q
            {"op": "lengths", "scene": "a", "pairs": [[1, 2, 3]]},  # bad pair
            {"op": "length", "scene": "a", "p": "junk", "q": [0, 0]},
            {"op": "path", "scene": "a", "p": None, "q": None},
            {"op": "length", "scene": "a", "p": list(vs[0]), "q": list(vs[-1])},
        ]
        out = st.answer_batch(batch)
        assert len(out) == 5
        for r in out[:4]:
            assert not r["ok"] and r["error"]
        assert out[4]["ok"] and out[4]["result"] == idx.length(vs[0], vs[-1])

    def test_local_ops_run_once_on_poisoned_batch(self, state):
        """Regression: a sleep op must not execute twice when a poisoned
        batchmate forces the per-request fallback."""
        st, _ = state
        t0 = time.perf_counter()
        out = st.answer_batch(
            [
                {"op": "sleep", "scene": "a", "ms": 200},
                {"op": "length", "scene": "a"},  # poisons the coalesced pass
            ]
        )
        elapsed = time.perf_counter() - t0
        assert out[0]["ok"] and not out[1]["ok"]
        assert elapsed < 0.35, f"sleep appears to have run twice ({elapsed:.2f}s)"

    def test_endpoints_op(self, state):
        st, _ = state
        out = st.answer_batch([{"op": "endpoints", "scene": "a", "k": 8}])
        assert out[0]["ok"]
        assert out[0]["result"]["vertices"] and out[0]["result"]["free"]

    def test_stats_shape(self, state):
        st, idx = state
        vs = idx.vertices()
        st.answer_batch(
            [{"op": "length", "scene": "a", "p": list(vs[0]), "q": list(vs[-1])}]
        )
        s = st.stats()
        assert s["requests"] == 1
        assert s["scenes"] == {"a": 1}
        assert "p99_ms" in s["service"]
        assert "batch_size_hist" in s
        assert "batch_size_hist" in s["server"]
        assert set(s["memory"]) == {"rss_bytes", "private_bytes"}

    def test_memory_info_on_linux(self):
        info = memory_info()
        if sys.platform.startswith("linux"):
            assert info["rss_bytes"] > 0
            assert info["private_bytes"] > 0


# ----------------------------------------------------------------------
async def _rpc(host, port, *msgs, timeout=30.0):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for m in msgs:
            await write_frame(writer, m)
        return [
            await asyncio.wait_for(read_frame(reader), timeout) for _ in msgs
        ]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestClusterEndToEnd:
    @pytest.fixture(scope="class")
    def scene_data(self):
        rects_a = random_disjoint_rects(7, seed=1)
        rects_b = random_disjoint_rects(5, seed=2)
        return {
            "a": (rects_a, ShortestPathIndex.build(rects_a)),
            "b": (rects_b, ShortestPathIndex.build(rects_b)),
        }

    def test_answers_match_in_process_index(self, scene_data):
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            async with ClusterFrontend(scenes, workers=2, batch_window_ms=1.0) as fe:
                msgs, want = [], []
                for name, (_, idx) in scene_data.items():
                    vs = idx.vertices()
                    for i in range(0, len(vs) - 1, 3):
                        msgs.append(
                            {
                                "id": len(msgs),
                                "op": "length",
                                "scene": name,
                                "p": list(vs[i]),
                                "q": list(vs[-1 - i]),
                            }
                        )
                        want.append(idx.length(vs[i], vs[-1 - i]))
                resps = await _rpc(fe.host, fe.port, *msgs)
                assert [r["id"] for r in resps] == list(range(len(msgs)))
                assert all(r["ok"] for r in resps)
                assert [r["result"] for r in resps] == want
        asyncio.run(run())

    def test_bulk_lengths_and_paths(self, scene_data):
        async def run():
            rects, idx = scene_data["a"]
            vs = idx.vertices()
            pairs = [[list(vs[i]), list(vs[-1 - i])] for i in range(4)]
            async with ClusterFrontend(
                {"a": {"obstacles": rects}}, workers=1
            ) as fe:
                resps = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "lengths", "scene": "a", "pairs": pairs},
                    {"id": 1, "op": "path", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                )
                assert resps[0]["ok"] and resps[1]["ok"]
                want = [idx.length(vs[i], vs[-1 - i]) for i in range(4)]
                assert resps[0]["result"] == want
                assert [tuple(p) for p in resps[1]["result"]] == idx.shortest_path(
                    vs[0], vs[-1]
                )
        asyncio.run(run())

    def test_errors_are_per_request_and_ordered(self, scene_data):
        async def run():
            rects, idx = scene_data["a"]
            vs = idx.vertices()
            inside = rects[0]
            bad_point = [inside.xlo + 1, inside.ylo + 1]  # obstacle interior
            async with ClusterFrontend(
                {"a": {"obstacles": rects}}, workers=1
            ) as fe:
                resps = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                    {"id": 1, "op": "length", "scene": "ghost",
                     "p": [0, 0], "q": [1, 1]},
                    {"id": 2, "op": "length", "scene": "a",
                     "p": bad_point, "q": list(vs[0])},
                    {"id": 3, "op": "nonsense"},
                    {"id": 4, "op": "length", "scene": "a",
                     "p": list(vs[1]), "q": list(vs[-2])},
                )
                assert [r["id"] for r in resps] == [0, 1, 2, 3, 4]
                assert resps[0]["ok"] and resps[4]["ok"]
                assert "unknown scene" in resps[1]["error"]
                assert "obstacle" in resps[2]["error"]
                assert "unknown op" in resps[3]["error"]
                for r in resps:
                    if not r["ok"]:
                        assert "\n" not in r["error"]
        asyncio.run(run())

    def test_load_shedding_bounded_queue(self, scene_data):
        async def run():
            rects, _ = scene_data["a"]
            async with ClusterFrontend(
                {"a": {"obstacles": rects}},
                workers=1,
                queue_depth=1,
                max_batch=1,
                batch_window_ms=0.0,
            ) as fe:
                reader, writer = await asyncio.open_connection(fe.host, fe.port)
                n = 10
                for i in range(n):
                    await write_frame(
                        writer,
                        {"id": i, "op": "sleep", "scene": "a", "ms": 100},
                    )
                resps = [
                    await asyncio.wait_for(read_frame(reader), 30) for _ in range(n)
                ]
                writer.close()
                shed = [r for r in resps if r.get("shed")]
                served = [r for r in resps if r.get("ok")]
                assert shed, "a queue of depth 1 must shed under a 10-burst"
                assert served, "the queue-admitted requests must still serve"
                assert len(shed) + len(served) == n
                assert all("overloaded" in r["error"] for r in shed)
                # responses stay in request order even with mixed outcomes
                assert [r["id"] for r in resps] == list(range(n))
                # front-end metrics saw the sheds
                stats = fe.stats()["frontend"]
                assert stats["sheds"] == len(shed)
                assert fe.scene_metrics["a"].shed == len(shed)
        asyncio.run(run())

    def test_stats_verb_shape(self, scene_data):
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            async with ClusterFrontend(scenes, workers=2) as fe:
                _, idx = scene_data["a"]
                vs = idx.vertices()
                await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                )
                (st,) = await _rpc(fe.host, fe.port, {"id": 1, "op": "stats"})
                assert st["ok"]
                result = st["result"]
                assert set(result["workers"]) == {"0", "1"}
                w0 = result["workers"]["0"]
                for key in ("service", "batch_size_hist", "store", "server", "memory"):
                    assert key in w0
                fr = result["frontend"]
                for key in ("requests", "sheds", "qps", "batch_size_hist", "scenes"):
                    assert key in fr
                assert "p99_ms" in fr["scenes"]["a"]["latency"]
                assert result["assignment"] == fe.assignment
        asyncio.run(run())

    def test_scenes_verb_and_pinning(self, scene_data):
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            async with ClusterFrontend(
                scenes, workers=2, pins={"a": 1, "b": 1}
            ) as fe:
                (resp,) = await _rpc(fe.host, fe.port, {"id": 0, "op": "scenes"})
                assert resp["result"]["scenes"] == {"a": 1, "b": 1}
                assert resp["result"]["workers"] == 2
        asyncio.run(run())

    def test_worker_death_fails_over_to_survivor(self, scene_data):
        # unsupervised: kill the worker owning scene "a" and its traffic
        # must fail over to the survivor with *correct* answers (every
        # worker holds every spec; routing is HRW over the live set)
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            async with ClusterFrontend(
                scenes, workers=2, pins={"a": 0, "b": 1}, supervise=False
            ) as fe:
                os.kill(fe.workers[0].proc.pid, signal.SIGKILL)
                fe.workers[0].proc.join(timeout=10)
                _, idx_a = scene_data["a"]
                _, idx_b = scene_data["b"]
                va, vb = idx_a.vertices(), idx_b.vertices()
                ra, rb = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(va[0]), "q": list(va[-1])},
                    {"id": 1, "op": "length", "scene": "b",
                     "p": list(vb[0]), "q": list(vb[-1])},
                )
                assert ra["ok"] and ra["result"] == idx_a.length(va[0], va[-1])
                assert rb["ok"] and rb["result"] == idx_b.length(vb[0], vb[-1])
                # the failed round trip is what detects the death, so
                # health only reports degraded on a *later* request
                (h,) = await _rpc(fe.host, fe.port, {"id": 2, "op": "health"})
                assert h["result"]["status"] == "degraded"
                assert h["result"]["workers_alive"] == 1
        asyncio.run(run())

    def test_worker_death_mid_batch_redirects(self, scene_data):
        # kill the worker while its batch is on the pipe: the front-end
        # re-routes the failed batch (idempotent reads) to the survivor
        # and the client still sees successes, not "worker died"
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            async with ClusterFrontend(
                scenes, workers=2, pins={"a": 0, "b": 1}, supervise=False
            ) as fe:
                _, idx_a = scene_data["a"]
                vs = idx_a.vertices()
                client = asyncio.ensure_future(
                    _rpc(
                        fe.host,
                        fe.port,
                        {"id": 0, "op": "sleep", "scene": "a", "ms": 400},
                        {"id": 1, "op": "length", "scene": "a",
                         "p": list(vs[0]), "q": list(vs[-1])},
                    )
                )
                await asyncio.sleep(0.15)  # let the batch reach worker 0
                os.kill(fe.workers[0].proc.pid, signal.SIGKILL)
                r0, r1 = await client
                assert r0["ok"] and r0["result"] == "slept"
                assert r1["ok"] and r1["result"] == idx_a.length(vs[0], vs[-1])
        asyncio.run(run())

    def test_supervised_restart_rejoins(self, scene_data):
        # with supervision (the default) a killed worker is respawned,
        # passes readiness, and transparently rejoins the routing set
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            async with ClusterFrontend(
                scenes, workers=2, pins={"a": 0, "b": 1}
            ) as fe:
                pid0 = fe.workers[0].proc.pid
                os.kill(pid0, signal.SIGKILL)
                _, idx_a = scene_data["a"]
                vs = idx_a.vertices()
                # death is detected by the next round trip to the slot
                (r,) = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                )
                assert r["ok"], r
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    (h,) = await _rpc(fe.host, fe.port, {"id": 0, "op": "health"})
                    if h["result"]["workers_alive"] == 2:
                        break
                    # queries keep succeeding throughout the outage
                    (r,) = await _rpc(
                        fe.host,
                        fe.port,
                        {"id": 0, "op": "length", "scene": "a",
                         "p": list(vs[0]), "q": list(vs[-1])},
                    )
                    assert r["ok"], r
                    await asyncio.sleep(0.05)
                else:
                    pytest.fail("worker 0 never rejoined")
                assert fe.workers[0].proc.pid != pid0
                (ra,) = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                )
                assert ra["ok"] and ra["result"] == idx_a.length(vs[0], vs[-1])
                (st,) = await _rpc(fe.host, fe.port, {"id": 1, "op": "stats"})
                sup = st["result"]["supervisor"]
                assert sup["total_restarts"] >= 1
                assert sup["workers"]["0"]["restarts"] >= 1
                assert sup["workers"]["0"]["last_crash"]
                assert st["result"]["health"]["status"] == "serving"
        asyncio.run(run())

    def test_loadgen_closed_and_open(self, scene_data):
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            async with ClusterFrontend(scenes, workers=2) as fe:
                rep = await loadgen.run(
                    fe.host, fe.port, mode="closed", n_requests=80, conns=4, seed=1
                )
                s = rep.summary()
                assert (s["ok"], s["errors"], s["shed"]) == (80, 0, 0)
                assert s["latency"]["count"] == 80
                assert s["latency"]["p50_ms"] <= s["latency"]["p99_ms"]
                rep2 = await loadgen.run(
                    fe.host, fe.port, mode="open", n_requests=40, rps=2000,
                    conns=4, seed=2,
                )
                s2 = rep2.summary()
                assert s2["ok"] == 40 and s2["errors"] == 0
        asyncio.run(run())

    def test_loadgen_streams_deterministic(self):
        pools = {
            "s": {"vertices": [[0, 0], [5, 5], [9, 1]], "free": [[2, 2]]},
        }
        a = loadgen.build_requests(pools, 50, seed=7)
        b = loadgen.build_requests(pools, 50, seed=7)
        c = loadgen.build_requests(pools, 50, seed=8)
        assert a == b and a != c
        ops = {r["op"] for r in a}
        assert "lengths" in ops and "length" in ops

    def test_spawn_start_method(self, scene_data):
        async def run():
            rects, idx = scene_data["a"]
            vs = idx.vertices()
            async with ClusterFrontend(
                {"a": {"obstacles": rects}}, workers=1, start_method="spawn"
            ) as fe:
                (resp,) = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                    timeout=60.0,
                )
                assert resp["ok"] and resp["result"] == idx.length(vs[0], vs[-1])
        asyncio.run(run())

    def test_prebuilt_index_source(self, scene_data):
        async def run():
            _, idx = scene_data["a"]
            vs = idx.vertices()
            async with ClusterFrontend({"a": {"index": idx}}, workers=1) as fe:
                (resp,) = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                )
                assert resp["result"] == idx.length(vs[0], vs[-1])
        asyncio.run(run())

    def test_no_shm_mode(self, scene_data):
        async def run():
            rects, idx = scene_data["a"]
            vs = idx.vertices()
            async with ClusterFrontend(
                {"a": {"obstacles": rects}}, workers=1, use_shm=False
            ) as fe:
                assert fe.publisher is None
                (resp,) = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                )
                assert resp["result"] == idx.length(vs[0], vs[-1])
        asyncio.run(run())

    def test_workers_exit_after_stop(self, scene_data):
        async def run():
            rects, _ = scene_data["a"]
            fe = ClusterFrontend({"a": {"obstacles": rects}}, workers=2)
            await fe.start()
            procs = [w.proc for w in fe.workers]
            await fe.stop()
            return procs

        procs = asyncio.run(run())
        for p in procs:
            assert not p.is_alive()


# ----------------------------------------------------------------------
class TestClusterCLI:
    def test_cluster_and_loadgen_cli(self, tmp_path):
        """The CI smoke flow in miniature: start `python -m repro cluster`
        as a subprocess, run the loadgen CLI against it, SIGINT it, and
        assert a clean exit with no leftover processes or segments."""
        rects = random_disjoint_rects(8, seed=1)
        scene = tmp_path / "scene.json"
        scene.write_text(
            json.dumps({"rects": [[r.xlo, r.ylo, r.xhi, r.yhi] for r in rects]})
        )
        ready = tmp_path / "ready.txt"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "cluster", str(scene),
                "--workers", "2", "--ready-file", str(ready), "--duration", "60",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not ready.exists() and time.monotonic() < deadline:
                assert proc.poll() is None, proc.stdout.read()
                time.sleep(0.1)
            assert ready.exists(), "cluster never became ready"
            port = int(ready.read_text().split()[1])
            from repro.__main__ import main

            rc = main(
                [
                    "loadgen", "--port", str(port), "--closed",
                    "--requests", "100", "--conns", "2", "--check",
                ]
            )
            assert rc == 0
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
            assert "cluster stopped" in out
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()

    def test_cluster_cli_in_process_duration(self, tmp_path, capsys):
        """cmd_cluster end to end in this process: --duration stops the
        server, the ready file carries the port, loadgen talks to it."""
        import threading

        from repro.__main__ import main

        rects = random_disjoint_rects(6, seed=2)
        scene = tmp_path / "s.json"
        scene.write_text(
            json.dumps({"rects": [[r.xlo, r.ylo, r.xhi, r.yhi] for r in rects]})
        )
        ready = tmp_path / "ready.txt"
        rc: dict = {}

        def serve():
            rc["cluster"] = main(
                [
                    "cluster", str(scene), "--workers", "1",
                    "--ready-file", str(ready), "--duration", "6",
                    "--window-ms", "0.5", "--pin", "s=0",
                ]
            )

        t = threading.Thread(target=serve)
        t.start()
        try:
            deadline = time.monotonic() + 30
            while not ready.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert ready.exists()
            port = int(ready.read_text().split()[1])
            assert (
                main(
                    ["loadgen", "--port", str(port), "--requests", "30",
                     "--conns", "2", "--json", "--check"]
                )
                == 0
            )
            out = capsys.readouterr().out
            report = json.loads(out[out.index("{"):])
            assert report["ok"] == 30 and report["errors"] == 0
        finally:
            t.join(timeout=60)
        assert rc["cluster"] == 0
        out += capsys.readouterr().out
        assert "cluster listening" in out and "cluster stopped" in out

    def test_loadgen_cli_refuses_dead_port(self, capsys):
        from repro.__main__ import main

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        with pytest.raises(SystemExit, match="loadgen"):
            main(["loadgen", "--port", str(port), "--requests", "1"])

    def test_bad_pin_argument(self, tmp_path):
        from repro.__main__ import main

        scene = tmp_path / "s.json"
        scene.write_text(json.dumps({"rects": [[0, 0, 2, 2]]}))
        with pytest.raises(SystemExit, match="--pin"):
            main(["cluster", str(scene), "--pin", "s=notanumber"])

    def test_out_of_range_pin_is_one_line_error(self, tmp_path):
        from repro.__main__ import main

        scene = tmp_path / "s.json"
        scene.write_text(json.dumps({"rects": [[0, 0, 2, 2]]}))
        with pytest.raises(SystemExit, match="pinned") as exc:
            main(["cluster", str(scene), "--workers", "2", "--pin", "s=7"])
        assert "\n" not in str(exc.value)
