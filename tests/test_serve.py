"""Tests for the serving subsystem: snapshots, the scene store, the
batching query server, and their CLI entry points."""

import io
import json
import threading
import time
import zipfile

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.allpairs import DistanceIndex
from repro.core.api import ShortestPathIndex
from repro.core.query import QueryStructure
from repro.errors import QueryError, SnapshotError
from repro.pram import PRAM
from repro.serve import (
    QueryServer,
    Request,
    SceneStore,
    is_snapshot,
    load,
    read_header,
    save,
)
from repro.serve.snapshot import (
    NPZ_VERSION,
    RAW_MAGIC,
    SNAPSHOT_VERSION,
    _encode_raw,
    _export_arrays,
    load_arrays,
    read_header as read_snapshot_header,
)
from repro.workloads.generators import (
    random_container_polygon,
    random_disjoint_rects,
    random_free_points,
)
from repro.workloads.requests import random_request_stream, scene_endpoints


def _rewrite_member(path, name, value: bytes):
    """Rewrite one member of an npz archive in place (corruption helper)."""
    with zipfile.ZipFile(path) as zf:
        members = {info.filename: zf.read(info.filename) for info in zf.infolist()}
    members[name] = value
    with zipfile.ZipFile(path, "w") as zf:
        for fname, data in members.items():
            zf.writestr(fname, data)


def _npz_bytes(arr: np.ndarray) -> bytes:
    buf = io.BytesIO()
    np.lib.format.write_array(buf, arr, allow_pickle=False)
    return buf.getvalue()


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("engine", ["parallel", "sequential"])
    @pytest.mark.parametrize("seed", [1, 5])
    def test_lengths_and_paths_survive(self, tmp_path, engine, seed):
        rects = random_disjoint_rects(14, seed=seed)
        idx = ShortestPathIndex.build(rects, engine=engine)
        loaded = load(save(idx, tmp_path / "s.rsp"))
        assert loaded.engine == engine
        assert loaded.rects == idx.rects
        vs = idx.vertices()
        assert loaded.vertices() == vs
        vpairs = [(vs[i], vs[-1 - i]) for i in range(0, len(vs), 3)]
        free = random_free_points(rects, 8, seed=seed + 1)
        apairs = [(free[i], free[-1 - i]) for i in range(4)]
        mixed = [(free[0], vs[2]), (vs[3], free[1])]
        for pairs in (vpairs, apairs, mixed):
            assert np.array_equal(idx.lengths(pairs), loaded.lengths(pairs))
        for p, q in vpairs[:4] + mixed:
            got = loaded.shortest_path(p, q)
            assert got == idx.shortest_path(p, q)
            # the reported polyline really has the reported length
            total = sum(
                abs(a[0] - b[0]) + abs(a[1] - b[1]) for a, b in zip(got, got[1:])
            )
            assert total == idx.length(p, q)

    def test_container_polygon_round_trip(self, tmp_path):
        rects = random_disjoint_rects(8, seed=4)
        poly = random_container_polygon(rects, seed=2)
        idx = ShortestPathIndex.build(rects, container=poly)
        loaded = load(save(idx, tmp_path / "c.rsp"))
        assert loaded.container is not None
        assert loaded.container.loop == idx.container.loop
        # pocket-rect vertices sit outside P; only in-container vertices
        # are legal query endpoints
        vs = [v for v in idx.vertices() if poly.contains(v)]
        pairs = [(vs[i], vs[-1 - i]) for i in range(0, len(vs), 5)]
        assert np.array_equal(idx.lengths(pairs), loaded.lengths(pairs))
        far = (10_000, 10_000)
        with pytest.raises(QueryError):
            loaded.length(vs[0], far)

    def test_extra_points_round_trip(self, tmp_path):
        rects = random_disjoint_rects(10, seed=6)
        extra = random_free_points(rects, 3, seed=7)
        idx = ShortestPathIndex.build(rects, extra_points=extra)
        loaded = load(save(idx, tmp_path / "e.rsp"))
        for p in extra:
            assert loaded.index.has_point(p)
        assert loaded.length(extra[0], extra[1]) == idx.length(extra[0], extra[1])

    def test_snapshot_without_query_structure(self, tmp_path):
        rects = random_disjoint_rects(9, seed=8)
        idx = ShortestPathIndex.build(rects)
        loaded = load(save(idx, tmp_path / "nq.rsp", include_query=False))
        free = random_free_points(rects, 2, seed=9)
        # §6.4 structure is rebuilt on demand rather than reloaded
        assert loaded.length(free[0], free[1]) == idx.length(free[0], free[1])

    def test_header_metadata(self, tmp_path):
        rects = random_disjoint_rects(7, seed=3)
        idx = ShortestPathIndex.build(rects)
        path = save(idx, tmp_path / "h.rsp")
        header = read_header(path)
        assert header["version"] == SNAPSHOT_VERSION
        assert header["engine"] == "parallel"
        assert header["n_rects"] == 7
        assert header["n_points"] == len(idx.index)
        assert header["build_time"] == idx.pram.time
        assert is_snapshot(path)
        loaded = load(path)
        assert loaded.snapshot_meta["matrix_sha256"] == header["matrix_sha256"]

    def test_api_save_load_delegates(self, tmp_path):
        rects = random_disjoint_rects(6, seed=11)
        idx = ShortestPathIndex.build(rects)
        idx.save(tmp_path / "d.rsp")
        loaded = ShortestPathIndex.load(tmp_path / "d.rsp")
        vs = idx.vertices()
        assert loaded.length(vs[0], vs[-1]) == idx.length(vs[0], vs[-1])


class TestSnapshotFormatV2:
    """The npz layout (format v2) still writes and loads via the copy
    path; polygon members and v1 artifacts are locked here."""

    def _polygon_scene(self, seed=0):
        from repro.workloads.generators import random_polygon_scene

        return random_polygon_scene(n_polygons=2, n_rects=2, seed=seed)

    @pytest.mark.parametrize("engine", ["parallel", "sequential"])
    def test_polygon_scene_round_trip_byte_identical(self, tmp_path, engine):
        obstacles = self._polygon_scene(3)
        idx = ShortestPathIndex.build(obstacles, engine=engine)
        loaded = load(save(idx, tmp_path / "p.rsp", layout="npz"))
        # the distance matrix survives byte-identically
        assert idx.index.matrix.tobytes() == loaded.index.matrix.tobytes()
        assert loaded.rects == idx.rects
        assert [p.loop for p in loaded.polygons] == [p.loop for p in idx.polygons]
        assert loaded.seams == idx.seams
        # solid semantics survive: seam points rejected, queries answered
        seam = idx.seams[0]
        with pytest.raises(QueryError):
            loaded.length((seam.x, (seam.ylo + seam.yhi) // 2), idx.vertices()[0])
        vs = idx.vertices()
        pairs = [(vs[i], vs[-1 - i]) for i in range(0, len(vs), 5)]
        assert np.array_equal(idx.lengths(pairs), loaded.lengths(pairs))
        p, q = vs[0], vs[-1]
        assert loaded.shortest_path(p, q) == idx.shortest_path(p, q)

    def test_polygon_header_and_members(self, tmp_path):
        obstacles = self._polygon_scene(4)
        idx = ShortestPathIndex.build(obstacles)
        path = save(idx, tmp_path / "p2.rsp", layout="npz")
        header = read_header(path)
        assert header["version"] == NPZ_VERSION == 2
        assert header["n_polygons"] == 2
        # polygon scenes never persist §6.4 forests (corner-graph fallback)
        assert header["has_query_structure"] is False
        with zipfile.ZipFile(path) as zf:
            names = {i.filename for i in zf.infolist()}
        assert {"poly_offsets.npy", "poly_vertices.npy"} <= names
        assert "qs_parents.npy" not in names

    def test_rect_scene_still_exports_query_structure(self, tmp_path):
        idx = ShortestPathIndex.build(random_disjoint_rects(6, seed=13))
        path = save(idx, tmp_path / "r.rsp", layout="npz")
        header = read_header(path)
        assert header["version"] == 2
        assert header["n_polygons"] == 0
        assert header["has_query_structure"] is True

    def test_npz_and_raw_layouts_load_identically(self, tmp_path):
        obstacles = self._polygon_scene(7)
        idx = ShortestPathIndex.build(obstacles)
        from_npz = load(save(idx, tmp_path / "a.rsp", layout="npz"))
        from_raw = load(save(idx, tmp_path / "b.rsp", layout="raw"))
        assert from_npz.index.matrix.tobytes() == from_raw.index.matrix.tobytes()
        assert from_npz.rects == from_raw.rects
        assert from_npz.seams == from_raw.seams
        assert [p.loop for p in from_npz.polygons] == [
            p.loop for p in from_raw.polygons
        ]

    def test_v1_artifact_still_loads(self, tmp_path):
        """Hand-write a version-1 archive (the pre-polygon layout) and load."""
        import hashlib

        rects = random_disjoint_rects(7, seed=5)
        idx = ShortestPathIndex.build(rects)
        arrays = idx.index.export_arrays()
        arrays["rects"] = np.array(
            [[r.xlo, r.ylo, r.xhi, r.yhi] for r in idx.rects], dtype=np.int64
        )
        arrays["container"] = np.empty((0, 2), dtype=np.int64)
        arrays["qs_parents"] = idx.query.export_world_parents()
        digest = hashlib.sha256(
            np.ascontiguousarray(arrays["matrix"]).tobytes()
        ).hexdigest()
        header = {
            "format": "repro-snapshot",
            "version": 1,
            "repro_version": "1.0.0",
            "engine": "parallel",
            "n_points": len(idx.index),
            "n_rects": len(idx.rects),
            "has_container": False,
            "has_query_structure": True,
            "build_time": idx.pram.time,
            "build_work": idx.pram.work,
            "matrix_sha256": digest,
        }
        arrays["header"] = np.frombuffer(
            json.dumps(header, sort_keys=True).encode(), dtype=np.uint8
        )
        path = tmp_path / "v1.rsp"
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        loaded = load(path)
        assert loaded.snapshot_meta["version"] == 1
        assert loaded.polygons == [] and loaded.seams == []
        vs = idx.vertices()
        assert loaded.length(vs[0], vs[-1]) == idx.length(vs[0], vs[-1])
        # §6.4 forests from the v1 artifact are honoured
        assert loaded._query_parents is not None

    def test_unknown_future_version_rejected(self, tmp_path):
        idx = ShortestPathIndex.build(random_disjoint_rects(5, seed=1))
        path = save(idx, tmp_path / "f.rsp", layout="npz")
        header = read_header(path)
        header["version"] = 99
        raw = json.dumps(header).encode()
        _rewrite_member(path, "header.npy", _npz_bytes(np.frombuffer(raw, dtype=np.uint8)))
        with pytest.raises(SnapshotError, match="version"):
            load(path)

    def test_npz_claiming_raw_version_rejected(self, tmp_path):
        # a version-3 header inside an npz archive is a layout mismatch
        idx = ShortestPathIndex.build(random_disjoint_rects(5, seed=2))
        path = save(idx, tmp_path / "m.rsp", layout="npz")
        header = read_header(path)
        header["version"] = 3
        raw = json.dumps(header).encode()
        _rewrite_member(path, "header.npy", _npz_bytes(np.frombuffer(raw, dtype=np.uint8)))
        with pytest.raises(SnapshotError, match="raw"):
            load(path)

    def test_store_and_server_accept_polygon_scenes(self, tmp_path):
        obstacles = self._polygon_scene(6)
        store = SceneStore()
        store.add_scene("poly", obstacles)
        idx = store.get("poly")
        verts, free = scene_endpoints(idx, k_free=8, seed=1)
        assert free, "seam filtering must leave usable free points"
        reqs = random_request_stream({"poly": (verts, free)}, 40, seed=2)
        server = QueryServer(store)
        results = server.submit(reqs)
        singles = [server.submit([r])[0] for r in reqs]
        assert results == singles


class TestSnapshotRejection:
    """Corruption of the npz (v1/v2) copy path surfaces as SnapshotError."""

    @pytest.fixture()
    def snap(self, tmp_path):
        idx = ShortestPathIndex.build(random_disjoint_rects(6, seed=2))
        return save(idx, tmp_path / "x.rsp", layout="npz")

    def test_garbage_file(self, tmp_path):
        bad = tmp_path / "junk.rsp"
        bad.write_bytes(b"this is not an archive at all")
        assert not is_snapshot(bad)
        with pytest.raises(SnapshotError):
            load(bad)

    def test_truncated_archive(self, snap):
        data = snap.read_bytes()
        snap.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError):
            load(snap)

    def test_version_mismatch(self, snap):
        header = read_header(snap)
        header["version"] = SNAPSHOT_VERSION + 1
        raw = json.dumps(header).encode()
        _rewrite_member(
            snap, "header.npy", _npz_bytes(np.frombuffer(raw, dtype=np.uint8))
        )
        with pytest.raises(SnapshotError, match="version"):
            load(snap)

    def test_wrong_format_name(self, snap):
        header = read_header(snap)
        header["format"] = "other-artifact"
        raw = json.dumps(header).encode()
        _rewrite_member(
            snap, "header.npy", _npz_bytes(np.frombuffer(raw, dtype=np.uint8))
        )
        assert not is_snapshot(snap)
        with pytest.raises(SnapshotError):
            load(snap)

    def test_tampered_matrix_fails_checksum(self, snap):
        with np.load(snap) as npz:
            matrix = npz["matrix"].copy()
        matrix[0, -1] += 1
        _rewrite_member(snap, "matrix.npy", _npz_bytes(matrix))
        with pytest.raises(SnapshotError, match="checksum"):
            load(snap)

    def test_missing_header(self, tmp_path):
        bad = tmp_path / "noheader.rsp"
        np.savez_compressed(bad.open("wb"), matrix=np.zeros((2, 2)))
        with pytest.raises(SnapshotError, match="header"):
            load(bad)

    def test_bit_rot_inside_compressed_member(self, snap):
        # flip one byte of the matrix member's *compressed* stream: zlib
        # fails mid-decompress, which must still surface as SnapshotError
        with zipfile.ZipFile(snap) as zf:
            zi = zf.getinfo("matrix.npy")
            with snap.open("rb") as fh:
                fh.seek(zi.header_offset)
                hdr = fh.read(30)
            name_len = int.from_bytes(hdr[26:28], "little")
            extra_len = int.from_bytes(hdr[28:30], "little")
            data_off = zi.header_offset + 30 + name_len + extra_len
        raw = bytearray(snap.read_bytes())
        raw[data_off + 12] ^= 0xFF
        snap.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            load(snap)

    def test_bare_npy_file(self, tmp_path):
        bad = tmp_path / "plain.rsp"
        np.save(bad.open("wb"), np.zeros((3, 3)))
        assert not is_snapshot(bad)
        with pytest.raises(SnapshotError):
            load(bad)

    def test_no_stale_tmp_after_save(self, tmp_path):
        idx = ShortestPathIndex.build(random_disjoint_rects(4, seed=1))
        save(idx, tmp_path / "a.rsp")
        assert [p.name for p in tmp_path.iterdir()] == ["a.rsp"]


class TestSnapshotFormatV3:
    """The raw (mmap-friendly) layout: round trip, zero-copy load, and
    rejection of corrupt/truncated/future-versioned artifacts."""

    @pytest.fixture()
    def built(self):
        rects = random_disjoint_rects(8, seed=3)
        return rects, ShortestPathIndex.build(rects)

    def test_default_save_is_raw_v4(self, tmp_path, built):
        _, idx = built
        path = save(idx, tmp_path / "r.rsp")
        assert path.read_bytes()[: len(RAW_MAGIC)] == RAW_MAGIC
        header = read_snapshot_header(path)
        assert header["version"] == SNAPSHOT_VERSION == 4
        assert header["layout"] == "raw"
        assert set(header["toc"]) >= {"points", "matrix", "rects", "container"}
        assert is_snapshot(path)

    def test_load_is_mmap_backed_and_read_only(self, tmp_path, built):
        rects, idx = built
        loaded = load(save(idx, tmp_path / "r.rsp"))
        mat = loaded.index.matrix
        assert not mat.flags.owndata  # a view onto the file mapping
        assert isinstance(mat.base, np.memmap) or isinstance(mat, np.memmap)
        with pytest.raises((ValueError, OSError)):
            mat[0, 0] = 1.0
        vs = idx.vertices()
        pairs = [(vs[i], vs[-1 - i]) for i in range(0, len(vs), 3)]
        assert idx.lengths(pairs).tobytes() == loaded.lengths(pairs).tobytes()

    def test_load_without_mmap_matches(self, tmp_path, built):
        _, idx = built
        path = save(idx, tmp_path / "r.rsp")
        a, b = load(path), load(path, mmap=False)
        assert a.index.matrix.tobytes() == b.index.matrix.tobytes()
        assert b.index.matrix.flags.owndata or b.index.matrix.base is not None

    def test_future_raw_version_rejected(self, tmp_path, built):
        _, idx = built
        arrays, include_query = _export_arrays(idx, True)
        header = {
            "format": "repro-snapshot",
            "version": SNAPSHOT_VERSION + 1,
            "layout": "raw",
            "engine": "parallel",
            "matrix_sha256": "0" * 64,
        }
        path = tmp_path / "future.rsp"
        path.write_bytes(_encode_raw(header, arrays))
        with pytest.raises(SnapshotError, match="version"):
            load(path)
        err = str(pytest.raises(SnapshotError, read_snapshot_header, path).value)
        assert "\n" not in err  # one-line rejection

    def test_truncated_raw_artifact(self, tmp_path, built):
        _, idx = built
        path = save(idx, tmp_path / "t.rsp")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError, match="truncat"):
            load(path)

    def test_truncated_raw_header(self, tmp_path):
        bad = tmp_path / "h.rsp"
        bad.write_bytes(RAW_MAGIC + (10_000).to_bytes(8, "little") + b"{}")
        with pytest.raises(SnapshotError):
            load(bad)
        assert not is_snapshot(bad)

    def test_raw_magic_with_garbage_header(self, tmp_path):
        junk = b"not json at all!"
        bad = tmp_path / "g.rsp"
        bad.write_bytes(RAW_MAGIC + len(junk).to_bytes(8, "little") + junk)
        with pytest.raises(SnapshotError, match="header"):
            load(bad)

    def test_negative_toc_offset_rejected(self, tmp_path, built):
        """Regression: a corrupt TOC must not silently map header bytes
        as array data — offsets outside the payload raise SnapshotError."""
        _, idx = built
        arrays, _ = _export_arrays(idx, True)
        header = {
            "format": "repro-snapshot",
            "version": 3,
            "layout": "raw",
            "engine": "parallel",
            "matrix_sha256": "0" * 64,
        }
        path = tmp_path / "neg.rsp"
        path.write_bytes(_encode_raw(header, arrays))
        good = read_snapshot_header(path)
        good["toc"]["points"]["offset"] = -64
        import struct as _struct

        hbytes = json.dumps(good, sort_keys=True).encode()
        body = path.read_bytes()
        old_hlen = int.from_bytes(body[8:16], "little")
        old_base = (16 + old_hlen + 63) // 64 * 64
        new_base = (16 + len(hbytes) + 63) // 64 * 64
        rebuilt = (
            body[:8]
            + _struct.pack("<Q", len(hbytes))
            + hbytes
            + b"\0" * (new_base - 16 - len(hbytes))
            + body[old_base:]
        )
        path.write_bytes(rebuilt)
        with pytest.raises(SnapshotError, match="outside the payload"):
            load(path)

    def test_bitflip_in_matrix_fails_checksum(self, tmp_path, built):
        _, idx = built
        path = save(idx, tmp_path / "c.rsp")
        header = read_snapshot_header(path)
        hlen = int.from_bytes(path.read_bytes()[8:16], "little")
        base = (16 + hlen + 63) // 64 * 64
        off = base + header["toc"]["matrix"]["offset"] + 8
        raw = bytearray(path.read_bytes())
        raw[off] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum"):
            load(path)

    def test_container_and_query_structure_round_trip(self, tmp_path):
        rects = random_disjoint_rects(8, seed=4)
        poly = random_container_polygon(rects, seed=2)
        idx = ShortestPathIndex.build(rects, container=poly)
        loaded = load(save(idx, tmp_path / "c.rsp"))
        assert loaded.container.loop == idx.container.loop
        header, arrays = load_arrays(tmp_path / "c.rsp")
        assert arrays["qs_parents"] is not None
        free = [v for v in random_free_points(rects, 6, seed=5) if poly.contains(v)]
        for i in range(0, len(free) - 1, 2):
            assert loaded.length(free[i], free[i + 1]) == idx.length(
                free[i], free[i + 1]
            )


class TestExportImportHooks:
    def test_distance_index_array_round_trip(self):
        rects = random_disjoint_rects(8, seed=1)
        idx = ShortestPathIndex.build(rects)
        arrays = idx.index.export_arrays()
        again = DistanceIndex.from_arrays(arrays["points"], arrays["matrix"])
        assert again.points == idx.index.points
        p, q = idx.index.points[0], idx.index.points[-1]
        assert again.length(p, q) == idx.index.length(p, q)

    def test_from_arrays_validates_shapes(self):
        with pytest.raises(QueryError):
            DistanceIndex.from_arrays(np.zeros((3, 3)), np.zeros((3, 3)))
        with pytest.raises(QueryError):
            DistanceIndex.from_arrays(np.zeros((3, 2)), np.zeros((2, 2)))

    def test_query_structure_parents_round_trip(self):
        rects = random_disjoint_rects(10, seed=2)
        idx = ShortestPathIndex.build(rects)
        qs = idx.query
        parents = qs.export_world_parents()
        assert parents.shape == (4, len(rects))
        qs2 = QueryStructure(rects, idx.index, PRAM(), world_parents=parents)
        free = random_free_points(rects, 6, seed=3)
        for i in range(0, len(free) - 1, 2):
            assert qs2.length(free[i], free[i + 1]) == qs.length(free[i], free[i + 1])

    def test_query_structure_parents_shape_check(self):
        rects = random_disjoint_rects(5, seed=2)
        idx = ShortestPathIndex.build(rects)
        with pytest.raises(QueryError):
            QueryStructure(
                rects, idx.index, PRAM(), world_parents=np.zeros((4, 99), dtype=int)
            )


class TestSceneStore:
    def test_unknown_scene(self):
        store = SceneStore()
        with pytest.raises(QueryError, match="unknown scene"):
            store.get("nope")

    def test_duplicate_registration(self):
        store = SceneStore()
        store.add_scene("a", random_disjoint_rects(4, seed=1))
        with pytest.raises(QueryError, match="already registered"):
            store.add_scene("a", random_disjoint_rects(4, seed=2))

    def test_lazy_build_and_hit_stats(self):
        store = SceneStore()
        store.add_scene("a", random_disjoint_rects(5, seed=1))
        assert store.stats()["resident"] == 0
        idx1 = store.get("a")
        idx2 = store.get("a")
        assert idx1 is idx2
        s = store.stats()
        assert (s["misses"], s["hits"], s["builds"]) == (1, 1, 1)

    def test_snapshot_backed_scene(self, tmp_path):
        rects = random_disjoint_rects(6, seed=4)
        idx = ShortestPathIndex.build(rects)
        path = save(idx, tmp_path / "s.rsp")
        store = SceneStore()
        store.add_snapshot("s", path)
        got = store.get("s")
        assert got.rects == rects
        assert store.stats()["loads"] == 1

    def test_lru_eviction_by_bytes(self, tmp_path):
        store = SceneStore(max_bytes=1)  # every second scene overflows
        store.add_scene("a", random_disjoint_rects(4, seed=1))
        store.add_scene("b", random_disjoint_rects(4, seed=2))
        a = store.get("a")
        assert store.stats()["resident"] == 1
        store.get("b")
        # a was LRU and the budget is tiny: it must have been dropped
        s = store.stats()
        assert s["resident"] == 1
        assert s["evictions"] == 1
        assert "b" in store.resident() and "a" not in store.resident()
        # re-materialization works and yields a fresh, equivalent index
        a2 = store.get("a")
        assert a2 is not a
        assert a2.vertices() == a.vertices()

    def test_recently_used_scene_survives(self):
        store = SceneStore(max_bytes=1 << 30)
        store.add_scene("a", random_disjoint_rects(4, seed=1))
        store.add_scene("b", random_disjoint_rects(4, seed=2))
        store.get("a")
        store.get("b")
        assert sorted(store.resident()) == ["a", "b"]

    def test_explicit_evict_and_clear(self):
        store = SceneStore()
        store.add_scene("a", random_disjoint_rects(4, seed=1))
        assert not store.evict("a")  # not resident yet
        store.get("a")
        assert store.evict("a")
        store.get("a")
        store.clear_resident()
        assert store.stats()["resident"] == 0

    def test_get_never_returns_none_under_eviction_pressure(self):
        # a tiny budget forces every insert to evict the other scene;
        # hammering get() from several threads must still always yield a
        # real index (the lost-race branch re-materializes, never None)
        store = SceneStore(max_bytes=1)
        store.add_scene("a", random_disjoint_rects(3, seed=1))
        store.add_scene("b", random_disjoint_rects(3, seed=2))
        bad = []

        def worker(name):
            for _ in range(25):
                if store.get(name) is None:  # pragma: no cover - the bug
                    bad.append(name)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("a", "b") * 3
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not bad

    def test_pin_blocks_eviction(self):
        store = SceneStore(max_bytes=1)  # any insert overflows
        store.add_scene("a", random_disjoint_rects(4, seed=1))
        store.add_scene("b", random_disjoint_rects(4, seed=2))
        a = store.pin("a")
        assert store.stats()["pinned"] == 1
        store.get("b")  # would evict "a" — but it is pinned
        assert "a" in store.resident()
        assert not store.evict("a")
        store.clear_resident()
        assert "a" in store.resident()  # clear_resident also respects pins
        store.unpin("a")
        assert store.stats()["pinned"] == 0
        store.get("b")  # now the LRU rules apply again
        assert "a" not in store.resident()
        assert a.vertices()  # the pinned-era index stayed fully usable

    def test_unpin_without_pin_raises(self):
        store = SceneStore()
        store.add_scene("a", random_disjoint_rects(3, seed=1))
        with pytest.raises(QueryError, match="not pinned"):
            store.unpin("a")

    def test_using_context_manager_unpins_on_error(self):
        store = SceneStore()
        store.add_scene("a", random_disjoint_rects(3, seed=1))
        with pytest.raises(RuntimeError):
            with store.using("a"):
                raise RuntimeError("boom")
        assert store.stats()["pinned"] == 0

    def test_slow_reader_never_loses_its_scene(self):
        """Regression: LRU eviction under the byte bound must not free a
        scene an in-flight batch is still reading (the pre-pinning race:
        get() returned an index, eviction dropped it, and a shm-backed
        deployment would have unmapped the matrix mid-gather)."""
        store = SceneStore(max_bytes=1)
        store.add_scene("slow", random_disjoint_rects(5, seed=1))
        store.add_scene("noisy", random_disjoint_rects(4, seed=2))
        idx = store.get("slow")
        vs = idx.vertices()
        want = float(idx.lengths([(vs[0], vs[-1])])[0])
        stop = threading.Event()
        failures: list = []

        def reader():
            try:
                for _ in range(10):
                    with store.using("slow") as pinned:
                        # a deliberately slow read: the scene must stay
                        # resident for the entire block
                        time.sleep(0.01)
                        assert "slow" in store.resident()
                        assert float(pinned.lengths([(vs[0], vs[-1])])[0]) == want
            except Exception as exc:  # pragma: no cover - failure capture
                failures.append(exc)
            finally:
                stop.set()

        t = threading.Thread(target=reader)
        t.start()
        # hammer the budget from the main thread: every get() of "noisy"
        # tries to evict everything else
        while not stop.is_set():
            store.get("noisy")
            store.evict("noisy")
        t.join()
        assert not failures

    def test_concurrent_get_builds_once(self):
        calls = []
        barrier = threading.Barrier(8)

        def builder():
            calls.append(1)
            return ShortestPathIndex.build(random_disjoint_rects(6, seed=3))

        store = SceneStore()
        store.add_builder("shared", builder)
        results = [None] * 8

        def worker(k):
            barrier.wait()
            results[k] = store.get("shared")

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(r is results[0] for r in results)


class TestQueryServer:
    @pytest.fixture()
    def served(self):
        rects_a = random_disjoint_rects(8, seed=1)
        rects_b = random_disjoint_rects(6, seed=2)
        store = SceneStore()
        store.add_scene("a", rects_a)
        store.add_scene("b", rects_b)
        return QueryServer(store), store

    def test_mixed_batch_order_and_values(self, served):
        server, store = served
        ia, ib = store.get("a"), store.get("b")
        va, vb = ia.vertices(), ib.vertices()
        reqs = [
            Request("a", va[0], va[-1]),
            Request("b", vb[1], vb[-2]),
            Request("a", va[2], va[-3], op="path"),
            ("b", vb[0], vb[-1]),
            ("a", va[1], va[-2], "length"),
        ]
        out = server.submit(reqs)
        assert out[0] == ia.length(va[0], va[-1])
        assert out[1] == ib.length(vb[1], vb[-2])
        assert out[2] == ia.shortest_path(va[2], va[-3])
        assert out[3] == ib.length(vb[0], vb[-1])
        assert out[4] == ia.length(va[1], va[-2])
        stats = server.stats()
        assert stats["requests"] == 5
        assert stats["batches"] == 1
        assert stats["coalesced_groups"] == 2
        assert stats["largest_group"] == 2
        # batch-size histogram: one observation of a 5-request batch
        assert stats["batch_size_hist"] == {"5-8": 1}

    def test_batch_size_histogram_buckets(self, served):
        server, store = served
        va = store.get("a").vertices()
        for size in (1, 2, 3, 9):
            server.submit([("a", va[0], va[-1])] * size)
        hist = server.stats()["batch_size_hist"]
        assert hist == {"1": 1, "2": 1, "3-4": 1, "9-16": 1}

    def test_coalesced_matches_per_request(self, served):
        server, store = served
        endpoints = {n: scene_endpoints(store.get(n), seed=4) for n in ("a", "b")}
        reqs = random_request_stream(endpoints, 60, seed=9)
        batched = server.submit(reqs)
        singly = [server.submit([r])[0] for r in reqs]
        assert batched == singly

    def test_convenience_calls(self, served):
        server, store = served
        ia = store.get("a")
        va = ia.vertices()
        assert server.length("a", va[0], va[-1]) == ia.length(va[0], va[-1])
        got = server.lengths("a", [(va[0], va[-1]), (va[1], va[-2])])
        assert got.tolist() == [ia.length(va[0], va[-1]), ia.length(va[1], va[-2])]
        assert server.shortest_path("a", va[0], va[-1]) == ia.shortest_path(
            va[0], va[-1]
        )

    def test_bad_requests(self, served):
        server, _ = served
        with pytest.raises(QueryError):
            server.submit([("a", (0, 0), (1, 1), "teleport")])
        with pytest.raises(QueryError):
            server.submit(["nonsense"])
        with pytest.raises(QueryError, match="unknown scene"):
            server.submit([("ghost", (0, 0), (1, 1))])

    def test_empty_batch(self, served):
        server, _ = served
        assert server.submit([]) == []

    def test_threaded_submissions(self, served):
        server, store = served
        ia = store.get("a")
        va = ia.vertices()
        want = ia.length(va[0], va[-1])
        errors = []

        def worker():
            try:
                for _ in range(20):
                    assert server.submit([("a", va[0], va[-1])]) == [want]
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert server.stats()["requests"] == 120


class TestRequestStream:
    def test_deterministic_and_well_formed(self):
        rects = random_disjoint_rects(8, seed=1)
        idx = ShortestPathIndex.build(rects)
        endpoints = {"s": scene_endpoints(idx, seed=2)}
        a = random_request_stream(endpoints, 100, seed=3)
        b = random_request_stream(endpoints, 100, seed=3)
        c = random_request_stream(endpoints, 100, seed=4)
        assert a == b
        assert a != c
        assert len(a) == 100
        assert {r.scene for r in a} == {"s"}
        assert {r.op for r in a} <= {"length", "path"}
        verts, free = endpoints["s"]
        arb = [r for r in a if r.p in free or r.q in free]
        assert arb  # the default mix exercises §6.4

    def test_empty_inputs(self):
        assert random_request_stream({}, 10) == []
        rects = random_disjoint_rects(4, seed=1)
        idx = ShortestPathIndex.build(rects)
        assert random_request_stream({"s": scene_endpoints(idx)}, 0) == []


class TestServeCLI:
    @pytest.fixture()
    def scene_file(self, tmp_path):
        rects = random_disjoint_rects(8, seed=1)
        path = tmp_path / "scene.json"
        path.write_text(
            json.dumps({"rects": [[r.xlo, r.ylo, r.xhi, r.yhi] for r in rects]})
        )
        free = random_free_points(rects, 2, seed=2)
        return path, free

    def test_snapshot_then_query(self, tmp_path, scene_file, capsys):
        path, (p, q) = scene_file
        rsp = tmp_path / "scene.rsp"
        assert main(["snapshot", str(path), str(rsp)]) == 0
        assert rsp.exists()
        assert main(["query", str(rsp), f"{p[0]},{p[1]}", f"{q[0]},{q[1]}", "--path"]) == 0
        out, err = capsys.readouterr()
        assert "length = " in out
        assert "path   =" in out
        assert "rebuilding" not in err  # no rebuild hint on the snapshot path

    def test_query_json_prints_rebuild_hint(self, scene_file, capsys):
        path, (p, q) = scene_file
        assert main(["query", str(path), f"{p[0]},{p[1]}", f"{q[0]},{q[1]}"]) == 0
        out, err = capsys.readouterr()
        assert "length = " in out
        assert "snapshot" in err

    def test_query_matches_between_json_and_snapshot(self, tmp_path, scene_file, capsys):
        path, (p, q) = scene_file
        rsp = tmp_path / "scene.rsp"
        main(["snapshot", str(path), str(rsp)])
        capsys.readouterr()
        main(["query", str(path), f"{p[0]},{p[1]}", f"{q[0]},{q[1]}"])
        from_json = capsys.readouterr().out
        main(["query", str(rsp), f"{p[0]},{p[1]}", f"{q[0]},{q[1]}"])
        from_snap = capsys.readouterr().out
        assert from_json == from_snap

    def test_overlapping_scene_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rects": [[0, 0, 10, 10], [5, 5, 15, 15]]}))
        with pytest.raises(SystemExit) as exc:
            main(["query", str(bad), "0,0", "1,1"])
        msg = str(exc.value)
        assert "overlap" in msg
        assert "\n" not in msg.strip()

    def test_degenerate_rect_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rects": [[0, 0, 0, 10]]}))
        with pytest.raises(SystemExit, match="invalid scene"):
            main(["bench-info", str(bad)])

    def test_corrupt_snapshot_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.rsp"
        bad.write_bytes(b"garbage")
        with pytest.raises(SystemExit, match="snapshot"):
            main(["query", str(bad), "0,0", "1,1"])

    def test_missing_snapshot_one_line_error(self, tmp_path):
        missing = str(tmp_path / "nope.rsp")
        with pytest.raises(SystemExit, match="nope.rsp"):
            main(["query", missing, "0,0", "1,1"])
        with pytest.raises(SystemExit, match="nope.rsp"):
            main(["serve-bench", missing, "--requests", "1"])

    def test_serve_bench_reports_percentiles_and_histogram(
        self, tmp_path, scene_file, capsys
    ):
        path, _ = scene_file
        assert main(["serve-bench", str(path), "--requests", "40", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        # percentiles, not mean-only
        for token in ("p50", "p95", "p99"):
            assert token in out
        assert "batch-size histogram:" in out
        assert "batch_size_hist" in out  # server stats line carries the key

    def test_serve_bench_record_and_replay(self, tmp_path, scene_file, capsys):
        path, _ = scene_file
        rsp = tmp_path / "scene.rsp"
        main(["snapshot", str(path), str(rsp)])
        wl = tmp_path / "wl.json"
        assert (
            main(
                [
                    "serve-bench",
                    str(rsp),
                    str(path),
                    "--requests",
                    "50",
                    "--batch",
                    "16",
                    "--record",
                    str(wl),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "per-request:" in out and "coalesced:" in out
        assert wl.exists()
        assert main(["serve-bench", str(rsp), str(path), "--workload", str(wl)]) == 0
        out = capsys.readouterr().out
        assert "50 requests" in out
