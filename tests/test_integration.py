"""End-to-end integration tests across subsystems and at larger sizes."""

import numpy as np
import pytest

from repro.core.allpairs import ParallelEngine
from repro.core.api import ShortestPathIndex
from repro.core.baseline import GridOracle, path_is_clear, path_length
from repro.core.implicit import ImplicitBoundaryStructure
from repro.core.sequential import SequentialEngine
from repro.pram import PRAM, brent_time
from repro.workloads.generators import (
    random_disjoint_rects,
    random_free_points,
    staircase_container,
)


class TestLargeAgreement:
    def test_engines_agree_n60(self):
        rects = random_disjoint_rects(60, seed=1)
        seq = SequentialEngine(rects).build()
        par = ParallelEngine(rects, [], PRAM(), leaf_size=6).build()
        assert (par.submatrix(seq.points) == seq.matrix).all()

    def test_oracle_spot_check_n60(self):
        rects = random_disjoint_rects(60, seed=2)
        seq = SequentialEngine(rects).build()
        oracle = GridOracle(rects, seq.points)
        for i in (0, 40, 111, 200):
            p = seq.points[i]
            for j in (5, 77, 150):
                q = seq.points[j]
                assert seq.matrix[i, j] == oracle.dist(p, q)

    def test_determinism(self):
        rects = random_disjoint_rects(30, seed=3)
        a = ParallelEngine(rects, [], PRAM(), leaf_size=5).build()
        b = ParallelEngine(rects, [], PRAM(), leaf_size=5).build()
        assert a.points == b.points
        assert (a.matrix == b.matrix).all()

    def test_leaf_size_does_not_change_answers(self):
        rects = random_disjoint_rects(28, seed=4)
        idx4 = ParallelEngine(rects, [], PRAM(), leaf_size=4).build()
        idx10 = ParallelEngine(rects, [], PRAM(), leaf_size=10).build()
        assert (idx4.submatrix(idx10.points) == idx10.matrix).all()


class TestScalingShape:
    def test_work_scales_subcubically(self):
        """Doubling n multiplies work by < 8 (strictly subcubic; the
        measured exponent is ~2.6, see EXPERIMENTS.md E3)."""
        works = []
        for n in (24, 48):
            pram = PRAM()
            ParallelEngine(random_disjoint_rects(n, seed=7), [], pram, leaf_size=6).build()
            works.append(pram.work)
        assert works[1] / works[0] < 8.0

    def test_time_scales_polylog(self):
        """Simulated parallel time tracks Θ(log² n): quadrupling n grows T
        by (log 64 / log 16)² ≈ 2.25, nowhere near 4."""
        times = []
        for n in (16, 64):
            pram = PRAM()
            ParallelEngine(random_disjoint_rects(n, seed=8), [], pram, leaf_size=6).build()
            times.append(pram.time)
        assert times[1] < 3.5 * times[0]

    def test_brent_consistency(self):
        pram = PRAM()
        ParallelEngine(random_disjoint_rects(20, seed=9), [], pram, leaf_size=5).build()
        t1 = brent_time(pram.work, pram.time, 1)
        tinf = brent_time(pram.work, pram.time, 10**12)
        assert t1 >= pram.work
        assert tinf <= pram.time + 1


class TestFullStackRoundtrip:
    def test_facade_with_everything(self):
        rects = random_disjoint_rects(22, seed=10)
        idx = ShortestPathIndex.build(rects, engine="parallel")
        free = random_free_points(rects, 6, seed=11)
        oracle = GridOracle(rects, free + idx.vertices())
        # arbitrary lengths
        for i in range(0, len(free) - 1, 2):
            assert idx.length(free[i], free[i + 1]) == oracle.dist(free[i], free[i + 1])
        # vertex paths
        vs = idx.vertices()
        path = idx.shortest_path(vs[0], vs[-1])
        assert path_length(path) == idx.length(vs[0], vs[-1])
        assert path_is_clear(path, rects)
        # arbitrary paths
        p, q = free[0], free[1]
        path2 = idx.shortest_path(p, q)
        assert path_length(path2) == idx.length(p, q)
        assert path_is_clear(path2, rects)

    def test_implicit_structure_against_facade(self):
        rects = random_disjoint_rects(10, seed=12)
        poly = staircase_container(rects, steps=12, margin=25)
        implicit = ImplicitBoundaryStructure(poly, rects, PRAM())
        gates = poly.vertices_loop()[::9]
        verts = [rects[0].sw, rects[5].ne]
        oracle = GridOracle(rects, gates + verts)
        for g in gates[:8]:
            for v in verts:
                assert implicit.length(g, v) == oracle.dist(g, v)

    def test_sequential_and_parallel_same_facade_answers(self):
        rects = random_disjoint_rects(16, seed=13)
        a = ShortestPathIndex.build(rects, engine="parallel")
        b = ShortestPathIndex.build(rects, engine="sequential")
        for p in a.vertices()[:8]:
            for q in a.vertices()[-8:]:
                assert a.length(p, q) == b.length(p, q)


class TestStatsShape:
    def test_interface_growth_is_tame(self):
        """The additive-interface argument: max |S_v| stays O(n)."""
        n = 64
        engine = ParallelEngine(random_disjoint_rects(n, seed=14), [], PRAM(), leaf_size=6)
        engine.build()
        assert engine.stats.max_interface <= 30 * n

    def test_matrix_is_finite_everywhere(self):
        rects = random_disjoint_rects(40, seed=15)
        idx = ParallelEngine(rects, [], PRAM(), leaf_size=6).build()
        assert np.isfinite(idx.matrix).all()
