"""Unit tests for the min-link / bicriteria query family.

The exhaustive differential coverage lives in ``test_fuzz_links.py``
(210 seeded scenes against the grid oracle); these are the known-answer
and plumbing tests: hand-checkable frontiers, batched-vs-single
agreement, snapshot v4 round-trips, pre-v4 capability gating, the
QueryServer verbs, and the CLI surfaces.
"""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.api import ShortestPathIndex
from repro.errors import QueryError, SnapshotError
from repro.geometry.primitives import Rect
from repro.serve.server import QueryServer, Request
from repro.serve.snapshot import (
    LEGACY_VERBS,
    _encode_raw,
    load,
    load_arrays,
    read_header,
    reconstruct,
    save,
)
from repro.serve.store import SceneStore
from tests.harness import assert_valid_path

# S on a tall tower, T on a low flat block, a mid block between them
# whose bottom sits one unit above the flat block's: flying over
# everything is long but straight, threading under the mid block and
# over the flat one is shortest but weaves.  Frontier worked out by
# hand: (88, 2 bends), (84, 3), (82, 4).
BLOCKS = [Rect(0, 0, 10, 20), Rect(40, 15, 46, 30), Rect(54, 14, 70, 22)]
S, T = (0, 20), (70, 22)


@pytest.fixture(scope="module")
def blocks_idx():
    return ShortestPathIndex.build(BLOCKS, engine="parallel")


class TestKnownAnswers:
    def test_three_point_frontier(self, blocks_idx):
        frontier = blocks_idx.bicriteria(S, T)
        assert [(length, bends) for length, bends, _ in frontier] == [
            (88.0, 2),
            (84.0, 3),
            (82.0, 4),
        ]
        for length, bends, path in frontier:
            assert_valid_path(
                blocks_idx, path, S, T, expected_len=length, expected_bends=bends
            )

    def test_extremes_match_frontier_ends(self, blocks_idx):
        assert blocks_idx.min_links(S, T) == 3
        assert blocks_idx.length(S, T) == 82.0
        witness = blocks_idx.min_link_path(S, T)
        # min-link witness: fewest bends, minimum length among those
        assert_valid_path(
            blocks_idx, witness, S, T, expected_len=88.0, expected_bends=2
        )

    def test_degenerate_and_straight(self, blocks_idx):
        assert blocks_idx.min_links(S, S) == 0
        assert blocks_idx.bicriteria(S, S) == [(0, 0, [S])]
        # an unobstructed collinear pair is one segment, zero bends
        assert blocks_idx.min_links((0, 40), (70, 40)) == 1

    def test_batched_agree_with_singles(self, blocks_idx):
        vs = blocks_idx.vertices()
        pairs = [(vs[i], vs[-1 - i]) for i in range(len(vs) // 2)] + [(S, T)]
        singles = [blocks_idx.min_links(p, q) for p, q in pairs]
        assert blocks_idx.link_counts(pairs) == singles
        fronts = blocks_idx.paretos(pairs)
        for (p, q), front in zip(pairs, fronts):
            expect = [
                (length, bends)
                for length, bends, _ in blocks_idx.bicriteria(p, q, with_paths=False)
            ]
            assert front == expect

    def test_arbitrary_endpoints_extend_the_grid(self, blocks_idx):
        # off-grid endpoints route through an ad-hoc extended index
        p, q = (3, 33), (67, 3)
        links = blocks_idx.min_links(p, q)
        path = blocks_idx.min_link_path(p, q)
        assert_valid_path(
            blocks_idx, path, p, q,
            expected_len=sum(
                abs(a[0] - b[0]) + abs(a[1] - b[1])
                for a, b in zip(path, path[1:])
            ),
            expected_bends=max(links - 1, 0),
        )


class TestSnapshotV4:
    def test_roundtrip_with_link_matrix(self, blocks_idx, tmp_path):
        snap = save(blocks_idx, tmp_path / "b.rsp", include_links=True)
        header = read_header(snap)
        assert header["version"] == 4
        assert set(header["verbs"]) == {"length", "path", "minlink", "pareto"}
        idx = load(snap)
        assert idx._link_matrix is not None
        assert idx.min_links(S, T) == 3
        assert idx.bicriteria(S, T)[0][:2] == (88.0, 2)
        # the persisted matrix is the lookup the loaded index serves from
        n = len(idx.index)
        assert np.asarray(idx._link_matrix).shape == (n, n)

    def test_default_save_has_no_matrix_but_full_verbs(self, blocks_idx, tmp_path):
        snap = save(blocks_idx, tmp_path / "b.rsp")
        idx = load(snap)
        assert idx._link_matrix is None
        # v4 artifacts answer the whole family either way (lazy DP)
        assert idx.min_links(S, T) == 3

    def test_pre_v4_artifact_gates_link_verbs(self, blocks_idx, tmp_path):
        snap = save(blocks_idx, tmp_path / "b.rsp")
        header, arrays = load_arrays(snap, mmap=False)
        header.pop("verbs")
        header.pop("toc")
        header["version"] = 3
        legacy = tmp_path / "legacy.rsp"
        legacy.write_bytes(
            _encode_raw(header, {k: v for k, v in arrays.items() if v is not None})
        )
        idx = load(legacy)
        assert idx.capabilities == LEGACY_VERBS
        assert "predates link queries" in idx.capability_note
        assert idx.length(S, T) == 82.0  # legacy verbs still answer
        with pytest.raises(QueryError, match="minlink"):
            idx.min_links(S, T)
        with pytest.raises(QueryError, match="pareto"):
            idx.paretos([(S, T)])

    def test_corrupt_link_matrix_shape_rejected(self, blocks_idx, tmp_path):
        snap = save(blocks_idx, tmp_path / "b.rsp", include_links=True)
        header, arrays = load_arrays(snap, mmap=False)
        arrays = {k: v for k, v in arrays.items() if v is not None}
        arrays["link_matrix"] = np.zeros((2, 2), dtype=np.int32)
        with pytest.raises(SnapshotError, match="link matrix shape"):
            reconstruct(header, arrays)


class TestServer:
    def test_minlink_and_pareto_ops(self, blocks_idx, tmp_path):
        snap = save(blocks_idx, tmp_path / "b.rsp", include_links=True)
        store = SceneStore()
        store.add_snapshot("b", snap)
        server = QueryServer(store)
        out = server.submit(
            [
                Request("b", S, T, op="minlink"),
                Request("b", S, T, op="length"),
                Request("b", S, T, op="pareto"),
                Request("b", S, T, op="minlink"),
            ]
        )
        assert out[0] == 3 and out[3] == 3
        assert out[1] == 82.0
        assert out[2] == [(88.0, 2), (84.0, 3), (82.0, 4)]
        assert server.min_links("b", S, T) == 3
        assert server.pareto("b", S, T)[-1] == (82.0, 4)

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError, match="unknown request op"):
            Request("b", S, T, op="teleport")


class TestCLI:
    def _scene(self, tmp_path):
        scene = tmp_path / "scene.json"
        scene.write_text(
            json.dumps(
                {"rects": [[r.xlo, r.ylo, r.xhi, r.yhi] for r in BLOCKS]}
            )
        )
        return scene

    def test_query_minlink_pareto(self, tmp_path, capsys):
        scene = self._scene(tmp_path)
        assert main(["query", str(scene), "0,20", "70,22",
                     "--minlink", "--pareto"]) == 0
        out = capsys.readouterr().out
        assert "links  = 3 (bends = 2)" in out
        assert "2 bends" in out and "(length 82" in out

    def test_snapshot_links_flag(self, tmp_path, capsys):
        scene = self._scene(tmp_path)
        snap = tmp_path / "scene.rsp"
        assert main(["snapshot", str(scene), str(snap), "--links"]) == 0
        assert "+links" in capsys.readouterr().out
        idx = load(snap)
        assert idx._link_matrix is not None

    def test_query_legacy_snapshot_capability_error(self, tmp_path, capsys):
        scene = self._scene(tmp_path)
        snap = tmp_path / "scene.rsp"
        assert main(["snapshot", str(scene), str(snap)]) == 0
        header, arrays = load_arrays(snap, mmap=False)
        header.pop("verbs")
        header.pop("toc")
        header["version"] = 3
        legacy = tmp_path / "legacy.rsp"
        legacy.write_bytes(
            _encode_raw(header, {k: v for k, v in arrays.items() if v is not None})
        )
        # one-line capability error, not a traceback
        with pytest.raises(SystemExit) as exc:
            main(["query", str(legacy), "0,20", "70,22", "--minlink"])
        assert "predates link queries" in str(exc.value)
