"""Tests for the Monge machinery (Lemmas 1, 3, 4, 5) and SMAWK."""

import random

import numpy as np
import pytest

from repro.errors import MongeError
from repro.monge import (
    INF,
    is_monge,
    minplus_auto,
    minplus_monge,
    minplus_naive,
    pad_matrix,
    smawk_row_minima,
)
from repro.monge.smawk import brute_force_row_minima
from repro.pram import PRAM


def random_monge(rows, cols, seed, scale=20):
    """Random Monge matrix: distance matrix of points on two parallel lines
    (a convex-position construction, cf. Lemma 1)."""
    rng = random.Random(seed)
    xs = sorted(rng.sample(range(200), rows))
    ys = sorted(rng.sample(range(200), cols))
    m = np.zeros((rows, cols))
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            m[i, j] = abs(x - y) + scale
    assert is_monge(m)
    return m


class TestIsMonge:
    def test_trivial_shapes(self):
        assert is_monge([[1.0]])
        assert is_monge([[1.0, 2.0]])

    def test_monge_yes(self):
        assert is_monge([[1, 2], [2, 2]])

    def test_monge_no(self):
        assert not is_monge([[2, 1], [1, 2]])

    def test_inf_padding_preserves(self):
        m = random_monge(4, 5, 0)
        assert is_monge(pad_matrix(m, 6, 7))

    def test_pad_too_small(self):
        with pytest.raises(ValueError):
            pad_matrix(np.zeros((3, 3)), 2, 5)

    def test_random_construction_is_monge(self):
        for seed in range(5):
            random_monge(6, 8, seed)  # asserts internally


class TestSMAWK:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bruteforce_on_monge(self, seed):
        m = random_monge(9, 13, seed)
        rows = list(range(9))
        cols = list(range(13))
        f = lambda r, c: m[r, c]
        fast = smawk_row_minima(rows, cols, f)
        slow = brute_force_row_minima(rows, cols, f)
        for r in rows:
            assert m[r, fast[r]] == m[r, slow[r]]

    def test_single_row(self):
        out = smawk_row_minima([0], [0, 1, 2], lambda r, c: [5, 1, 3][c])
        assert out[0] == 1

    def test_empty(self):
        assert smawk_row_minima([], [1], lambda r, c: 0) == {}
        assert smawk_row_minima([1], [], lambda r, c: 0) == {}

    def test_with_inf_column(self):
        m = pad_matrix(random_monge(5, 5, 3), 5, 7)
        fast = smawk_row_minima(range(5), range(7), lambda r, c: m[r, c])
        slow = brute_force_row_minima(range(5), range(7), lambda r, c: m[r, c])
        for r in range(5):
            assert m[r, fast[r]] == m[r, slow[r]]


class TestMinPlus:
    def ref_minplus(self, a, b):
        al, k = a.shape
        k2, bc = b.shape
        out = np.full((al, bc), INF)
        for i in range(al):
            for j in range(bc):
                out[i, j] = min(a[i, t] + b[t, j] for t in range(k))
        return out

    @pytest.mark.parametrize("seed", range(5))
    def test_naive_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 50, (7, 5)).astype(float)
        b = rng.integers(0, 50, (5, 9)).astype(float)
        assert (minplus_naive(a, b, PRAM()) == self.ref_minplus(a, b)).all()

    @pytest.mark.parametrize("seed", range(5))
    def test_monge_product_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 50, (6, 8)).astype(float)
        b = random_monge(8, 10, seed)
        got = minplus_monge(a, b, PRAM())
        want = self.ref_minplus(a, b)
        assert (got == want).all()

    def test_monge_product_rejects_non_monge(self):
        a = np.zeros((2, 2))
        b = np.array([[2.0, 1.0], [1.0, 2.0]])
        with pytest.raises(MongeError):
            minplus_monge(a, b, PRAM())

    @pytest.mark.parametrize("seed", range(4))
    def test_auto_dispatch_all_paths(self, seed):
        rng = np.random.default_rng(seed)
        # path 1: B Monge
        a = rng.integers(0, 30, (5, 6)).astype(float)
        b = random_monge(6, 7, seed)
        assert (minplus_auto(a, b, PRAM()) == self.ref_minplus(a, b)).all()
        # path 2: A Monge, B not
        a2 = random_monge(5, 6, seed + 100)
        b2 = rng.integers(0, 30, (6, 7)).astype(float)
        while is_monge(b2):
            b2 = rng.integers(0, 30, (6, 7)).astype(float)
        assert (minplus_auto(a2, b2, PRAM()) == self.ref_minplus(a2, b2)).all()
        # path 3: neither
        a3 = rng.integers(0, 30, (5, 6)).astype(float)
        while is_monge(a3):
            a3 = rng.integers(0, 30, (5, 6)).astype(float)
        assert (minplus_auto(a3, b2, PRAM()) == self.ref_minplus(a3, b2)).all()

    def test_monge_closure_under_product(self):
        """Lemma 3's parenthetical: the product of Monge matrices is Monge."""
        for seed in range(4):
            a = random_monge(6, 7, seed)
            b = random_monge(7, 8, seed + 50)
            c = minplus_monge(a, b, PRAM())
            assert is_monge(c)

    def test_inf_rows_and_padding(self):
        a = pad_matrix(random_monge(3, 4, 1), 5, 4)
        b = pad_matrix(random_monge(4, 3, 2), 4, 5)
        got = minplus_monge(a, b, PRAM())
        want = self.ref_minplus(a, b)
        assert (got[:3, :3] == want[:3, :3]).all()
        assert np.isinf(got[3:, :]).all() and np.isinf(got[:, 3:]).all()

    def test_inner_dimension_mismatch(self):
        with pytest.raises(ValueError):
            minplus_naive(np.zeros((2, 3)), np.zeros((4, 2)), PRAM())

    def test_empty_inner_dimension(self):
        out = minplus_naive(np.zeros((2, 0)), np.zeros((0, 3)), PRAM())
        assert out.shape == (2, 3) and np.isinf(out).all()

    def test_work_accounting_smawk_linear(self):
        """Lemma 3's work bound: the Monge path charges O(α(β+γ)), far less
        than the naive O(αβγ) on big inner dimensions."""
        p_fast, p_slow = PRAM(), PRAM()
        a = np.zeros((40, 100))
        b = random_monge(100, 40, 9)
        minplus_monge(a, b, p_fast, check=False)
        minplus_naive(a, b, p_slow)
        assert p_fast.work < p_slow.work / 10
