"""Tests for ray shooting, hit sets, the Hanan grid and the grid oracle."""

import math
import random

import pytest

from repro.core.baseline import GridOracle, path_is_clear, path_length
from repro.geometry.hanan import hanan_graph
from repro.geometry.primitives import Rect, dist
from repro.geometry.rayshoot import RayShooter, brute_force_shoot
from repro.geometry.trapezoid import hit_sets, trapezoidal_decomposition
from repro.workloads.generators import random_disjoint_rects, random_free_points


class TestRayShooter:
    def setup_method(self):
        self.rects = [Rect(2, 4, 6, 8), Rect(8, 1, 12, 5), Rect(3, 10, 9, 13)]
        self.shooter = RayShooter(self.rects)

    def test_north_hit(self):
        h = self.shooter.shoot((4, 0), "N")
        assert h is not None
        assert h.rect_index == 0
        assert h.point == (4, 4)
        assert h.edge == ((2, 4), (6, 4))

    def test_north_miss_along_edge(self):
        # grazing along x == xlo is not a hit
        h = self.shooter.shoot((2, 0), "N")
        assert h is None or h.rect_index != 0

    def test_south_hit(self):
        h = self.shooter.shoot((4, 20), "S")
        assert h is not None and h.point == (4, 13)

    def test_east_hit(self):
        h = self.shooter.shoot((0, 3), "E")
        assert h is not None and h.rect_index == 1 and h.point == (8, 3)

    def test_west_hit(self):
        h = self.shooter.shoot((20, 7), "W")
        assert h is not None and h.rect_index == 0 and h.point == (6, 7)

    def test_zero_distance_hit_from_boundary(self):
        h = self.shooter.shoot((4, 4), "N")
        assert h is not None and h.point == (4, 4)

    def test_escape(self):
        assert self.shooter.shoot((100, 100), "N") is None

    @pytest.mark.parametrize("direction", ["N", "S", "E", "W"])
    def test_matches_brute_force_random(self, direction):
        rects = random_disjoint_rects(60, seed=13)
        shooter = RayShooter(rects)
        rng = random.Random(99)
        pts = random_free_points(rects, 150, seed=5)
        pts += [v for r in rects[:20] for v in r.vertices]
        for p in pts:
            if any(r.contains_interior(p) for r in rects):
                continue
            fast = shooter.shoot(p, direction)
            slow = brute_force_shoot(rects, p, direction)
            if slow is None:
                assert fast is None, (p, direction, fast)
            else:
                assert fast is not None, (p, direction)
                assert fast.point == slow.point, (p, direction)
        del rng


class TestHitSets:
    def test_hit_sets_grouping_and_order(self):
        rects = [Rect(0, 0, 2, 10), Rect(6, 2, 8, 4), Rect(6, 6, 8, 8)]
        pts = [(10, 3), (10, 7), (5, 3), (4, 7)]
        hits, by_edge = hit_sets(rects, pts, "W")
        assert hits[0].rect_index == 1
        assert hits[1].rect_index == 2
        assert hits[2].rect_index == 0 or hits[2].rect_index == 1
        # points hitting rect 0's right edge sorted by y
        if 0 in by_edge:
            ys = [pts[i][1] for i in by_edge[0]]
            assert ys == sorted(ys)

    def test_trapezoidal_decomposition(self):
        rects = [Rect(0, 4, 10, 6), Rect(2, 10, 8, 12)]
        hits = trapezoidal_decomposition(rects, [(5, 0), (5, 7), (1, 7)], "N")
        assert hits[0].rect_index == 0
        assert hits[1].rect_index == 1
        assert hits[2] is None


class TestHananGraph:
    def test_basic_blocking(self):
        rects = [Rect(0, 0, 2, 2)]
        g = hanan_graph(rects, [(1, 0), (1, 2), (0, 1), (2, 1)])
        # edge through the middle must be blocked
        nid = g.node_id((1, 0))
        up = [v for v, w in g.neighbors(nid)]
        assert g.node_id((1, 2)) not in up  # interior vertical edge blocked

    def test_boundary_edges_open(self):
        rects = [Rect(0, 0, 2, 2)]
        g = hanan_graph(rects)
        sw = g.node_id((0, 0))
        nbrs = dict(g.neighbors(sw))
        assert g.node_id((2, 0)) in nbrs  # along the bottom boundary
        assert g.node_id((0, 2)) in nbrs


class TestGridOracle:
    def test_free_plane_is_l1(self):
        rects = [Rect(100, 100, 101, 101)]  # far away
        pts = [(0, 0), (7, 3), (2, 9)]
        oracle = GridOracle(rects, pts)
        for p in pts:
            for q in pts:
                assert oracle.dist(p, q) == dist(p, q)

    def test_detour_around_wall(self):
        # wall from y=-10..10 at x in (4,6); going around costs extra
        rects = [Rect(4, -10, 6, 10)]
        oracle = GridOracle(rects, [(0, 0), (10, 0)])
        assert oracle.dist((0, 0), (10, 0)) == 10 + 2 * 10

    def test_symmetry_random(self):
        rects = random_disjoint_rects(25, seed=3)
        pts = random_free_points(rects, 8, seed=3)
        oracle = GridOracle(rects, pts)
        m = oracle.dist_matrix(pts)
        assert (m == m.T).all()
        assert (m.diagonal() == 0).all()

    def test_triangle_inequality_random(self):
        rects = random_disjoint_rects(20, seed=8)
        pts = random_free_points(rects, 7, seed=8)
        m = GridOracle(rects, pts).dist_matrix(pts)
        n = len(pts)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert m[i, j] <= m[i, k] + m[k, j] + 1e-9

    def test_lower_bound_l1(self):
        rects = random_disjoint_rects(20, seed=2)
        pts = random_free_points(rects, 10, seed=2)
        oracle = GridOracle(rects, pts)
        for p in pts:
            for q in pts:
                assert oracle.dist(p, q) >= dist(p, q)

    def test_path_reconstruction(self):
        rects = random_disjoint_rects(30, seed=6)
        pts = random_free_points(rects, 6, seed=6)
        oracle = GridOracle(rects, pts)
        for p in pts[:3]:
            for q in pts[3:]:
                path = oracle.path(p, q)
                assert path[0] == p and path[-1] == q
                assert path_length(path) == oracle.dist(p, q)
                assert path_is_clear(path, rects)

    def test_unregistered_point_raises(self):
        from repro.errors import QueryError

        oracle = GridOracle([Rect(0, 0, 1, 1)], [(5, 5)])
        with pytest.raises(QueryError):
            oracle.dist((5, 5), (333, 333))

    def test_touching_walls_are_passable(self):
        # obstacle interiors are opaque but boundaries are not (§2): four
        # touching walls do NOT seal the courtyard — the path slips along
        # the shared edges.  Disjoint rectangles can never disconnect the
        # plane, so every distance in a legal scene is finite.
        rects = [
            Rect(0, 0, 10, 1), Rect(0, 9, 10, 10),
            Rect(0, 1, 1, 9), Rect(9, 1, 10, 9),
        ]
        oracle = GridOracle(rects, [(5, 5), (20, 20)])
        d = oracle.dist((5, 5), (20, 20))
        assert d != math.inf
        assert d == 30  # straight L1 distance via the corner seams
