"""Tests for envelopes (§2 Fig. 2) and rectilinear convex polygons."""

import pytest

from repro.errors import ConvexityError, GeometryError
from repro.geometry.envelope import Envelope, envelope, rectilinear_hull_exists
from repro.geometry.polygon import RectilinearPolygon, pockets_to_rects, rect_polygon
from repro.geometry.primitives import Rect, validate_disjoint
from repro.workloads.fixtures import two_clusters
from repro.workloads.generators import random_container_polygon, random_disjoint_rects


class TestEnvelope:
    def test_single_rect_envelope_is_the_rect(self):
        env = envelope([Rect(2, 3, 8, 9)])
        assert env.bbox == (2, 3, 8, 9)
        assert not env.is_degenerate
        assert env.contains((5, 5)) and env.contains((2, 3))
        assert not env.contains((1, 5))
        assert sorted(env.vertices_loop()) == sorted(
            [(2, 3), (8, 3), (8, 9), (2, 9)]
        )

    def test_envelope_contains_all_rect_corners(self):
        rects = random_disjoint_rects(30, seed=11)
        env = envelope(rects)
        for r in rects:
            for v in r.vertices:
                assert env.contains(v)

    def test_hull_exists_for_interlocking_rects(self):
        # both projections cover the bbox: no thinnable bridge
        rects = [Rect(0, 0, 4, 4), Rect(3, 3, 7, 7)]
        assert rectilinear_hull_exists(rects)

    def test_hull_missing_for_vertically_separated(self):
        # x-projections overlap but the y-projection has a gap: the vertical
        # bridge can be thinned indefinitely, so the hull does not exist
        rects = [Rect(0, 0, 4, 4), Rect(2, 6, 6, 10)]
        assert not rectilinear_hull_exists(rects)

    def test_degenerate_two_clusters(self):
        assert not rectilinear_hull_exists(two_clusters())

    def test_boundary_loop_is_closed_rectilinear(self):
        rects = random_disjoint_rects(25, seed=4)
        env = envelope(rects)
        loop = env.vertices_loop()
        assert len(loop) >= 4
        for a, b in zip(loop, loop[1:] + [loop[0]]):
            assert (a[0] == b[0]) != (a[1] == b[1]), (a, b)

    @pytest.mark.parametrize("seed", range(3))
    def test_column_convexity(self, seed):
        rects = random_disjoint_rects(20, seed=seed)
        env = envelope(rects)
        xlo, ylo, xhi, yhi = env.bbox
        for x in range(xlo, xhi + 1, max(1, (xhi - xlo) // 17)):
            assert env.bottom_at(x) <= env.top_at(x)

    def test_boundary_chains_monotone(self):
        rects = random_disjoint_rects(22, seed=5)
        env = envelope(rects)
        if env.is_degenerate:
            pytest.skip("degenerate sample")
        for q in ("NE", "NW", "SE", "SW"):
            chain = env.boundary_chain(q)
            assert chain.increasing == (q in ("NW", "SE"))

    def test_intersects_rect_interior(self):
        env = envelope([Rect(0, 0, 4, 4), Rect(8, 0, 12, 4)])
        assert env.intersects_rect_interior(Rect(5, 1, 7, 3))
        assert not env.intersects_rect_interior(Rect(5, 10, 7, 12))

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Envelope([])


class TestRectilinearPolygon:
    def test_rectangle(self):
        p = rect_polygon(0, 0, 10, 6)
        assert p.size == 4
        assert p.contains((5, 3)) and p.contains((0, 0))
        assert not p.contains((11, 3))
        assert p.contains_interior((5, 3))
        assert not p.contains_interior((0, 3))

    def test_octagon_like(self):
        loop = [
            (2, 0), (8, 0), (8, 2), (10, 2), (10, 8), (8, 8),
            (8, 10), (2, 10), (2, 8), (0, 8), (0, 2), (2, 2),
        ]
        p = RectilinearPolygon(loop)
        assert p.contains((5, 5))
        assert p.contains((1, 5))  # inside the west notch band
        assert not p.contains((1, 1))  # cut corner
        assert p.on_boundary((2, 1))
        assert p.size == 12

    def test_non_convex_accepted_as_obstacle_rejected_as_container(self):
        # a U shape: legal as a polygonal *obstacle* (decomposable), but the
        # container role still demands rectilinear convexity
        loop = [(0, 0), (10, 0), (10, 10), (6, 10), (6, 4), (4, 4), (4, 10), (0, 10)]
        p = RectilinearPolygon(loop)
        assert not p.is_convex
        assert p.contains((5, 2)) and not p.contains((5, 8))
        rects, seams = p.decomposition()
        assert len(rects) == 3 and len(seams) == 2
        with pytest.raises(ConvexityError):
            _ = p.top  # container-role machinery
        from repro.core.api import ShortestPathIndex
        from repro.geometry.primitives import Rect

        with pytest.raises(ConvexityError):
            ShortestPathIndex.build([Rect(1, 1, 2, 2)], container=p)

    def test_non_rectilinear_rejected(self):
        with pytest.raises(GeometryError):
            RectilinearPolygon([(0, 0), (5, 5), (0, 5), (0, 1)])

    def test_orientation_normalised(self):
        cw = [(0, 0), (0, 5), (5, 5), (5, 0)]
        p = RectilinearPolygon(cw)
        assert p.contains((2, 2))

    def test_pockets_of_rectangle_are_empty(self):
        assert pockets_to_rects(rect_polygon(0, 0, 8, 8)) == []

    def test_pockets_cover_complement(self):
        loop = [
            (2, 0), (8, 0), (8, 2), (10, 2), (10, 8), (8, 8),
            (8, 10), (2, 10), (2, 8), (0, 8), (0, 2), (2, 2),
        ]
        p = RectilinearPolygon(loop)
        pockets = pockets_to_rects(p)
        validate_disjoint(pockets)
        xlo, ylo, xhi, yhi = p.bbox
        # every unit cell of the bbox is in exactly one of P, pockets
        for x in range(xlo, xhi):
            for y in range(ylo, yhi):
                in_pocket = sum(
                    1
                    for r in pockets
                    if r.xlo <= x and x + 1 <= r.xhi and r.ylo <= y and y + 1 <= r.yhi
                )
                cell_in_p = (
                    p.bottom.run_value(x) <= y and y + 1 <= p.top.run_value(x)
                )
                assert in_pocket == (0 if cell_in_p else 1), (x, y)

    def test_contains_rect(self):
        p = rect_polygon(0, 0, 10, 10)
        assert p.contains_rect(Rect(1, 1, 9, 9))
        assert not p.contains_rect(Rect(5, 5, 12, 9))


class TestRandomContainer:
    @pytest.mark.parametrize("seed", range(4))
    def test_container_contains_scene(self, seed):
        rects = random_disjoint_rects(15, seed=seed)
        poly = random_container_polygon(rects, seed=seed)
        for r in rects:
            assert poly.contains_rect(r), r

    def test_pockets_disjoint_from_scene(self):
        rects = random_disjoint_rects(12, seed=2)
        poly = random_container_polygon(rects, seed=2)
        pockets = pockets_to_rects(poly)
        for a in pockets:
            for b in rects:
                assert not a.interiors_intersect(b)
