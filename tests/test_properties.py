"""Property-based tests (hypothesis) for core invariants.

Scene strategies: a *slab* strategy whose disjointness is by construction
(shrinks well) and a *seeded-generator* strategy that reaches denser
layouts.  Every property mirrors a lemma or invariant from the paper.
"""

import operator

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.allpairs import ParallelEngine
from repro.core.baseline import GridOracle, path_is_clear, path_length
from repro.core.separator import staircase_separator
from repro.core.sequential import SequentialEngine
from repro.core.tracing import MODES, TraceForests
from repro.geometry.envelope import envelope
from repro.geometry.frontier import max_staircase_of_rects, maximal_points
from repro.geometry.primitives import ALL_TRANSFORMS, Rect, dist
from repro.monge.matrix import is_monge
from repro.monge.multiply import minplus_monge, minplus_naive
from repro.monge.smawk import brute_force_row_minima, smawk_row_minima
from repro.pram import PRAM, LevelAncestor, list_rank, parallel_merge, parallel_sort, scan
from repro.workloads.generators import random_disjoint_rects

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
FAST = settings(max_examples=60, deadline=None)


# ---------------------------------------------------------------------------
# scene strategies
# ---------------------------------------------------------------------------
@st.composite
def slab_scene(draw, max_rects=8):
    """Disjoint-by-construction: one rect per vertical slab."""
    k = draw(st.integers(min_value=2, max_value=max_rects))
    xs = sorted(draw(st.lists(
        st.integers(0, 400), min_size=2 * k, max_size=2 * k, unique=True)))
    rects = []
    for i in range(k):
        xlo, xhi = xs[2 * i], xs[2 * i + 1]
        ylo = draw(st.integers(-50, 50))
        h = draw(st.integers(1, 60))
        rects.append(Rect(xlo, ylo, xhi, ylo + h))
    return rects


@st.composite
def generated_scene(draw, max_rects=14):
    n = draw(st.integers(min_value=2, max_value=max_rects))
    seed = draw(st.integers(min_value=0, max_value=5000))
    return random_disjoint_rects(n, seed=seed)


@st.composite
def monge_matrix(draw, max_side=9):
    """Monge by construction: L1 distances between two sorted point rows."""
    r = draw(st.integers(2, max_side))
    c = draw(st.integers(2, max_side))
    xs = sorted(draw(st.lists(st.integers(0, 300), min_size=r, max_size=r, unique=True)))
    ys = sorted(draw(st.lists(st.integers(0, 300), min_size=c, max_size=c, unique=True)))
    off = draw(st.integers(0, 50))
    return np.array([[abs(x - y) + off for y in ys] for x in xs], dtype=float)


# ---------------------------------------------------------------------------
# engine-level metric properties
# ---------------------------------------------------------------------------
class TestEngineProperties:
    @SLOW
    @given(slab_scene())
    def test_parallel_engine_matches_oracle(self, rects):
        idx = ParallelEngine(rects, [], PRAM(), leaf_size=3).build()
        oracle = GridOracle(rects, idx.points)
        want = oracle.dist_matrix(idx.points)
        assert (idx.matrix == want).all()

    @SLOW
    @given(generated_scene())
    def test_engines_agree(self, rects):
        seq = SequentialEngine(rects).build()
        par = ParallelEngine(rects, [], PRAM(), leaf_size=4).build()
        assert (par.submatrix(seq.points) == seq.matrix).all()

    @SLOW
    @given(generated_scene(max_rects=10))
    def test_metric_axioms(self, rects):
        idx = SequentialEngine(rects).build()
        m = idx.matrix
        assert (m == m.T).all()
        assert (np.diag(m) == 0).all()
        n = len(idx.points)
        rng = np.random.default_rng(0)
        for _ in range(60):
            i, j, k = rng.integers(0, n, 3)
            assert m[i, j] <= m[i, k] + m[k, j]

    @SLOW
    @given(generated_scene(max_rects=10))
    def test_l1_lower_bound_and_free_pairs(self, rects):
        idx = SequentialEngine(rects).build()
        pts = idx.points
        for i in range(0, len(pts), 5):
            for j in range(0, len(pts), 7):
                p, q = pts[i], pts[j]
                d = idx.matrix[i, j]
                assert d >= dist(p, q)
                lo_x, hi_x = min(p[0], q[0]), max(p[0], q[0])
                lo_y, hi_y = min(p[1], q[1]), max(p[1], q[1])
                blocked = any(
                    r.xlo < hi_x and lo_x < r.xhi and r.ylo < hi_y and lo_y < r.yhi
                    for r in rects
                )
                if not blocked:
                    assert d == dist(p, q)

    @SLOW
    @given(generated_scene(max_rects=8))
    def test_symmetry_invariance_of_the_metric(self, rects):
        """Applying any axis symmetry to the scene transforms the metric
        covariantly (the paper's w.l.o.g. reflections are lossless)."""
        base = SequentialEngine(rects).build()
        for t in ALL_TRANSFORMS[:4]:
            timg = SequentialEngine(t.apply_rects(rects)).build()
            for p in base.points[::5]:
                for q in base.points[::7]:
                    assert base.length(p, q) == timg.length(t.apply(p), t.apply(q))


# ---------------------------------------------------------------------------
# separator / tracing / frontier properties (Theorem 2, Lemmas 6 & 12)
# ---------------------------------------------------------------------------
class TestGeometryProperties:
    @SLOW
    @given(generated_scene(max_rects=14))
    def test_separator_invariants(self, rects):
        sep = staircase_separator(rects, PRAM())
        assert sep.staircase.is_clear(rects)
        assert len(sep.upper) + len(sep.lower) == len(rects)
        assert sep.staircase.num_segments <= 2 * len(rects) + 4
        for idx_ in sep.upper:
            assert all(sep.staircase.side_of(v) >= 0 for v in rects[idx_].vertices)
        for idx_ in sep.lower:
            assert all(sep.staircase.side_of(v) <= 0 for v in rects[idx_].vertices)

    @SLOW
    @given(generated_scene(max_rects=12), st.sampled_from(sorted(MODES)))
    def test_tracing_invariants(self, rects, mode):
        forests = TraceForests(rects, PRAM())
        p = (min(r.xlo for r in rects) - 3, min(r.ylo for r in rects) - 3)
        tp = forests.trace(p, mode, PRAM())
        xs = [q[0] for q in tp.points]
        ys = [q[1] for q in tp.points]
        assert xs == sorted(xs) or xs == sorted(xs, reverse=True)
        assert ys == sorted(ys) or ys == sorted(ys, reverse=True)
        assert tp.size <= 2 * len(rects) + 2

    @FAST
    @given(st.lists(st.tuples(st.integers(0, 60), st.integers(0, 60)),
                    min_size=1, max_size=40))
    def test_maximal_points_definition(self, pts):
        out = set(maximal_points(pts))
        for p in set(pts):
            dominated = any(q != p and q[0] >= p[0] and q[1] >= p[1] for q in set(pts))
            assert (p in out) == (not dominated)

    @SLOW
    @given(generated_scene(max_rects=10))
    def test_frontiers_clear_and_enclosing(self, rects):
        for quadrant, want in (("NE", -1), ("NW", -1), ("SE", 1), ("SW", 1)):
            s = max_staircase_of_rects(rects, quadrant)
            assert s.is_clear(rects)
            for r in rects:
                for v in r.vertices:
                    assert s.side_of(v) == want or s.side_of(v) == 0

    @SLOW
    @given(generated_scene(max_rects=10))
    def test_envelope_contains_scene(self, rects):
        env = envelope(rects)
        for r in rects:
            for v in r.vertices:
                assert env.contains(v)


# ---------------------------------------------------------------------------
# Monge properties (Lemmas 1, 3, 4)
# ---------------------------------------------------------------------------
class TestMongeProperties:
    @FAST
    @given(monge_matrix())
    def test_construction_is_monge(self, m):
        assert is_monge(m)

    @FAST
    @given(monge_matrix(), st.integers(0, 100))
    def test_row_offsets_preserve_monge(self, m, off):
        m2 = m.copy()
        m2[0, :] += off
        assert is_monge(m2)

    @SLOW
    @given(monge_matrix(max_side=7), monge_matrix(max_side=7))
    def test_minplus_closure_and_agreement(self, a, b):
        if a.shape[1] != b.shape[0]:
            b = np.array(
                [[abs(i - j) for j in range(5)] for i in range(a.shape[1])],
                dtype=float,
            )
        fast = minplus_monge(a, b, PRAM(), check=False)
        slow = minplus_naive(a, b, PRAM())
        assert (fast == slow).all()
        assert is_monge(fast)

    @FAST
    @given(monge_matrix())
    def test_smawk_matches_bruteforce(self, m):
        rows = list(range(m.shape[0]))
        cols = list(range(m.shape[1]))
        f = lambda r, c: m[r, c]
        fast = smawk_row_minima(rows, cols, f)
        slow = brute_force_row_minima(rows, cols, f)
        for r in rows:
            assert m[r, fast[r]] == m[r, slow[r]]


# ---------------------------------------------------------------------------
# PRAM primitive semantics
# ---------------------------------------------------------------------------
class TestPramProperties:
    @FAST
    @given(st.lists(st.integers(-100, 100), max_size=60))
    def test_scan_matches_accumulate(self, vals):
        import itertools

        got = scan(vals, operator.add, 0, pram=PRAM())
        want = list(itertools.accumulate(vals))
        assert got == want

    @FAST
    @given(st.lists(st.integers(0, 1000), max_size=50))
    def test_sort_matches_sorted(self, vals):
        assert parallel_sort(vals, pram=PRAM()) == sorted(vals)

    @FAST
    @given(st.lists(st.integers(0, 99), max_size=30),
           st.lists(st.integers(0, 99), max_size=30))
    def test_merge_matches_sorted(self, a, b):
        a, b = sorted(a), sorted(b)
        assert parallel_merge(a, b, pram=PRAM()) == sorted(a + b)

    @FAST
    @given(st.integers(1, 120), st.integers(0, 10**6))
    def test_list_rank_on_random_chains(self, n, seed):
        import random

        rng = random.Random(seed)
        order = list(range(n))
        rng.shuffle(order)
        succ = [None] * n
        for a, b in zip(order, order[1:]):
            succ[a] = b
        ranks = list_rank(succ, PRAM())
        for pos, v in enumerate(order):
            assert ranks[v] == n - 1 - pos

    @FAST
    @given(st.integers(2, 150), st.integers(0, 10**6))
    def test_level_ancestor_random_trees(self, n, seed):
        import random

        rng = random.Random(seed)
        parents = [None] + [rng.randrange(0, v) for v in range(1, n)]
        la = LevelAncestor(parents, PRAM())
        for _ in range(30):
            v = rng.randrange(n)
            k = rng.randint(0, la.depth[v])
            u = v
            for _ in range(k):
                u = parents[u]
            assert la.query(v, k) == u


# ---------------------------------------------------------------------------
# path validity (§8) on random scenes
# ---------------------------------------------------------------------------
class TestPathProperties:
    @SLOW
    @given(generated_scene(max_rects=8), st.integers(0, 100))
    def test_reported_paths_are_shortest_and_clear(self, rects, pick):
        from repro.core.pathreport import PathReporter

        idx = SequentialEngine(rects).build()
        rep = PathReporter(rects, idx, PRAM())
        pts = idx.points
        p = pts[pick % len(pts)]
        q = pts[(pick * 7 + 3) % len(pts)]
        path = rep.path(p, q)
        assert path[0] == p and path[-1] == q
        assert path_is_clear(path, rects)
        assert path_length(path) == idx.length(p, q)
