"""Seeded differential fuzz: polygon/rect mixed scenes, four engines.

Every scene is solved by the parallel D&C engine, the multiprocessing
``parallel-mp`` engine (held to *byte* identity with ``parallel``, not
just value equality), the sequential engine, and the grid-Dijkstra
baseline; matrices must agree exactly, sampled paths must be valid, and
arbitrary-point queries must match the oracle (see ``tests/harness.py``).
Failing scenes are shrunk and dumped as replayable JSON under
``tests/failures/``.

≥ 200 scenes total: 120 mixed polygon+rect, 40 polygon-only (one per
generator family and seed), 24 container + polygon-obstacle combos, and
16 adversarial hand-picked seam configurations.
"""

import pytest

from harness import assert_engines_agree
from repro.core.api import split_obstacles
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Rect
from repro.workloads.generators import (
    POLYGON_KINDS,
    _make_polygon,
    _translate_loop,
    plus_polygon,
    random_container_polygon,
    random_polygon_scene,
    spiral_polygon,
    staircase_polygon,
)

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.mark.parametrize("batch", range(12))
def test_fuzz_mixed_scenes(batch):
    """120 scenes: 2 polygons + 3 rects, every generator family."""
    for k in range(10):
        seed = batch * 10 + k
        obstacles = random_polygon_scene(n_polygons=2, n_rects=3, seed=seed)
        assert_engines_agree(obstacles, seed=seed, label="mixed")


@pytest.mark.parametrize("kind", POLYGON_KINDS)
def test_fuzz_single_family(kind):
    """40 scenes: two polygons of one family, no rects."""
    for k in range(10):
        seed = 9000 + k
        a = _make_polygon(kind, seed)
        bbox = a.bbox
        b = _translate_loop(
            _make_polygon(kind, seed + 1), bbox[2] - bbox[0] + 25, 3 * (k % 3)
        )
        assert_engines_agree([a, b], seed=seed, label=f"family-{kind}")


@pytest.mark.parametrize("batch", range(4))
def test_fuzz_container_with_polygons(batch):
    """24 scenes: polygon obstacles inside a random convex container."""
    for k in range(6):
        seed = 500 + batch * 6 + k
        obstacles = random_polygon_scene(n_polygons=1, n_rects=2, seed=seed)
        _, _, all_rects, _ = split_obstacles(obstacles)
        container = random_container_polygon(all_rects, seed=seed)
        assert_engines_agree(obstacles, container, seed=seed, label="container")


ADVERSARIAL = [
    # the plus: both chords of the decomposition are seams
    [plus_polygon(6, 6, 5, 2)],
    # plus next to a rect that invites a through-seam shortcut
    [plus_polygon(6, 6, 5, 2), Rect(13, 5, 15, 7)],
    # two interlocking Us (cavities facing each other)
    [
        RectilinearPolygon([(0, 0), (10, 0), (10, 10), (6, 10), (6, 4), (4, 4), (4, 10), (0, 10)]),
        RectilinearPolygon(
            [(14, 2), (24, 2), (24, 12), (14, 12), (14, 8), (20, 8), (20, 6), (14, 6)]
        ),
    ],
    # spiral: a free courtyard reachable only through the winding corridor
    [spiral_polygon(0, 0, 2)],
    # staircase band with a rect wedged under the steps
    [staircase_polygon(0, 0, 3, 3, 3, 5), Rect(7, -4, 9, -1)],
    # tall seam column: U with a deep narrow cavity
    [RectilinearPolygon([(0, 0), (9, 0), (9, 20), (6, 20), (6, 3), (3, 3), (3, 20), (0, 20)])],
    # seam endpoints exactly aligned with a neighbouring rect's edges
    [plus_polygon(6, 6, 5, 2), Rect(4, 14, 8, 16)],
    # two plus shapes sharing grid lines
    [plus_polygon(6, 6, 5, 2), plus_polygon(20, 6, 5, 2)],
]


@pytest.mark.parametrize("case", range(len(ADVERSARIAL)))
def test_fuzz_adversarial_seams(case):
    """16 checks: hand-picked seam geometries, two sample seeds each."""
    for seed in (1, 2):
        assert_engines_agree(
            ADVERSARIAL[case], seed=seed, label=f"adversarial-{case}", n_paths=8
        )


def test_tracing_reporter_refuses_polygon_scenes():
    """The §8 reporter is rectangle-only; exposing it on a polygon scene
    would hand back through-seam paths, so the property must refuse."""
    from repro.core.api import ShortestPathIndex
    from repro.errors import QueryError

    idx = ShortestPathIndex.build([plus_polygon(0, 0, 5, 2)])
    with pytest.raises(QueryError, match="rectangle-only"):
        _ = idx.reporter


def test_solid_semantics_blocks_seam_shortcut():
    """The canonical witness: crossing a plus via its decomposition seams
    must cost the full detour, in every engine, with a valid polyline."""
    from repro.core.api import ShortestPathIndex

    plus = plus_polygon(0, 0, 5, 2)
    for engine in ("parallel", "sequential"):
        idx = ShortestPathIndex.build([plus], engine=engine)
        # (2, -2) -> (2, 2): straight through the east arm seam would be 4;
        # the legal route rounds the arm tip at x = 5
        assert idx.length((2, -2), (2, 2)) == 10, engine
        path = idx.shortest_path((2, -2), (2, 2))
        from harness import assert_valid_path

        assert_valid_path(idx, path, (2, -2), (2, 2), 10)


def test_fuzz_parallel_mp_jit_modes():
    """parallel-mp under jit=True vs jit=False on seam-heavy scenes: the
    compiled kernels (or, without numba, the fallback) must leave the
    matrix byte-identical."""
    from repro.pipeline import StageCache, build_index
    from repro.scene import Scene

    for seed in (0, 4):
        obstacles = random_polygon_scene(n_polygons=2, n_rects=3, seed=seed)
        scene = Scene.from_obstacles(obstacles)
        on = build_index(
            scene, engine="parallel-mp", jobs=2, jit=True,
            cache=StageCache(max_entries=0),
        )
        off = build_index(
            scene, engine="parallel-mp", jobs=2, jit=False,
            cache=StageCache(max_entries=0),
        )
        assert on.index.matrix.tobytes() == off.index.matrix.tobytes()
