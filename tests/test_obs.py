"""Observability suite: the unified metrics registry, OpenMetrics
exposition, request tracing, structured logging, and their wiring into
the cluster.

The cluster-level tests drive a real multi-process ``ClusterFrontend``
and assert the contracts the ISSUE names: the ``stats`` verb is a *view*
over the registry (no drift), a traced request that survives a worker
kill carries a span tree recording the redirect hop, and ``GET
/metrics`` speaks valid OpenMetrics with the core series present.
"""

import asyncio
import io
import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.errors import ObsError
from repro.obs import (
    CONTENT_TYPE,
    JsonLogger,
    MetricsRegistry,
    SpanBuffer,
    chrome_trace,
    count_series,
    default_registry,
    finish,
    merge_snapshots,
    new_trace_id,
    render_openmetrics,
    set_log_stream,
    span,
)
from repro.obs.registry import set_default_registry


# ----------------------------------------------------------------------
# the registry itself
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("repro.t.requests", "requests", labels=["verb"])
        c.inc(verb="length")
        c.inc(2, verb="length")
        c.inc(verb="path")
        assert c.value(verb="length") == 3.0
        assert c.total() == 4.0
        g = reg.gauge("repro.t.depth", "queue depth")
        g.set(7)
        h = reg.histogram("repro.t.latency", "latency", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        snap = reg.snapshot()
        assert snap["repro.t.requests"]["type"] == "counter"
        assert snap["repro.t.depth"]["series"][0]["value"] == 7.0
        hs = snap["repro.t.latency"]["series"][0]
        assert hs["counts"] == [1, 1, 1] and hs["count"] == 3  # [.1, 1.0, +Inf]
        assert hs["sum"] == pytest.approx(5.55)
        # snapshots are plain data: JSON round-trips
        assert json.loads(json.dumps(snap)) == snap

    def test_families_are_idempotent_and_typed(self):
        reg = MetricsRegistry()
        a = reg.counter("repro.t.n", "n")
        assert reg.counter("repro.t.n", "n") is a
        with pytest.raises(ObsError):
            reg.gauge("repro.t.n", "now a gauge?")
        with pytest.raises(ObsError):
            reg.counter("repro.t.n", "n", labels=["verb"])  # label drift

    def test_counters_refuse_to_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError):
            reg.counter("repro.t.n", "n").inc(-1)

    def test_cardinality_bound_is_one_line(self):
        reg = MetricsRegistry(max_series=3)
        c = reg.counter("repro.t.scenes", "per-scene", labels=["scene"])
        for i in range(3):
            c.inc(scene=f"s{i}")
        with pytest.raises(ObsError) as err:
            c.inc(scene="s3")
        assert "\n" not in str(err.value)
        assert "repro.t.scenes" in str(err.value)
        # existing series keep working past the bound
        c.inc(scene="s0")
        assert c.value(scene="s0") == 2.0

    def test_thread_safety_exact_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("repro.t.n", "n", labels=["t"])
        h = reg.histogram("repro.t.h", "h")

        def work(tid):
            for _ in range(1000):
                c.inc(t=str(tid % 4))
                h.observe(0.01)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.total() == 8000.0
        assert reg.snapshot()["repro.t.h"]["series"][0]["count"] == 8000

    def test_fork_rearms_locks_and_reset_gives_clean_slate(self):
        # the at-fork hook re-creates every live registry's lock, so a
        # child forked while the parent held it can still record; cluster
        # workers then call reset() for a clean slate (worker_main does)
        reg = MetricsRegistry()
        reg.counter("repro.t.parent", "parent-side").inc(41)
        ctx = multiprocessing.get_context("fork")
        q = ctx.Queue()

        def child(q):
            # recording in the child must not deadlock on the parent lock
            reg.counter("repro.t.parent", "parent-side").inc()
            inherited = reg.counter("repro.t.parent", "parent-side").total()
            reg.reset()
            q.put((inherited, reg.names()))

        with reg._lock:  # fork while the lock is held: worst case
            p = ctx.Process(target=child, args=(q,))
            p.start()
        inherited, names_after_reset = q.get(timeout=10)
        p.join(timeout=10)
        assert inherited == 42.0  # fork inherits content...
        assert names_after_reset == []  # ...and reset() drops it
        # the parent is untouched by the child's reset
        assert reg.counter("repro.t.parent", "parent-side").total() == 41.0

    def test_default_registry_swap(self):
        mine = MetricsRegistry()
        old = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(old)
        assert default_registry() is old


# ----------------------------------------------------------------------
# OpenMetrics exposition
# ----------------------------------------------------------------------
class TestOpenMetrics:
    def test_golden_exposition(self):
        reg = MetricsRegistry()
        c = reg.counter("repro.demo.requests", "requests served", labels=["verb"])
        c.inc(3, verb="length")
        reg.gauge("repro.demo.depth", "queue depth").set(2)
        h = reg.histogram("repro.demo.wait", "queue wait", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert render_openmetrics(reg.snapshot()) == (
            "# TYPE repro_demo_depth gauge\n"
            "# HELP repro_demo_depth queue depth\n"
            "repro_demo_depth 2\n"
            "# TYPE repro_demo_requests counter\n"
            "# HELP repro_demo_requests requests served\n"
            'repro_demo_requests_total{verb="length"} 3\n'
            "# TYPE repro_demo_wait histogram\n"
            "# HELP repro_demo_wait queue wait\n"
            'repro_demo_wait_bucket{le="0.1"} 1\n'
            'repro_demo_wait_bucket{le="1"} 2\n'
            'repro_demo_wait_bucket{le="+Inf"} 3\n'
            "repro_demo_wait_sum 5.55\n"
            "repro_demo_wait_count 3\n"
            "# EOF\n"
        )

    def test_merge_labels_worker_series(self):
        fe = MetricsRegistry()
        fe.counter("repro.frontend.requests", "fe", labels=["verb"]).inc(verb="x")
        w0 = MetricsRegistry()
        w0.counter("repro.worker.requests", "w", labels=["scene"]).inc(scene="a")
        w1 = MetricsRegistry()
        w1.counter("repro.worker.requests", "w", labels=["scene"]).inc(scene="a")
        merged = merge_snapshots(
            fe.snapshot(), {"0": w0.snapshot(), "1": w1.snapshot()}
        )
        series = merged["repro.worker.requests"]["series"]
        assert {s["labels"]["worker"] for s in series} == {"0", "1"}
        assert count_series(merged) == 3
        text = render_openmetrics(merged)
        assert 'worker="0"' in text and 'worker="1"' in text
        assert text.endswith("# EOF\n")

    def test_content_type_is_openmetrics(self):
        assert "openmetrics-text" in CONTENT_TYPE


# ----------------------------------------------------------------------
# tracing primitives
# ----------------------------------------------------------------------
class TestTracing:
    def test_span_lifecycle_and_buffer_filtering(self):
        tid = new_trace_id()
        root = span("request", tid, scene="a")
        child = span("queue_wait", tid, root["span_id"], worker=1)
        finish(child)
        finish(root, ok=True)
        assert child["parent_id"] == root["span_id"]
        assert root["dur"] >= 0 and root["attrs"]["ok"] is True
        buf = SpanBuffer(capacity=8)
        buf.extend([root, child])
        buf.add(span("request", new_trace_id()))
        assert len(buf.snapshot()) == 3
        assert {s["name"] for s in buf.snapshot(trace_id=tid)} == {
            "request", "queue_wait",
        }

    def test_buffer_is_bounded_and_counts_drops(self):
        buf = SpanBuffer(capacity=4)
        for i in range(10):
            buf.add(span(f"s{i}", new_trace_id()))
        assert len(buf.snapshot()) == 4
        assert buf.dropped == 6
        assert [s["name"] for s in buf.snapshot(limit=2)] == ["s8", "s9"]

    def test_chrome_trace_schema(self):
        tid = new_trace_id()
        root = span("request", tid, t0=100.0)
        finish(root, t1=100.5)
        child = span("worker.service", tid, root["span_id"], t0=100.1, worker=1)
        finish(child, t1=100.3)
        doc = chrome_trace([root, child])
        assert doc["displayTimeUnit"] == "ms"
        evs = doc["traceEvents"]
        assert len(evs) == 2
        for ev in evs:
            assert ev["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid", "args"} <= set(ev)
        # microsecond timestamps, sorted
        assert evs[0]["ts"] <= evs[1]["ts"]
        assert evs[0]["dur"] == pytest.approx(500_000, rel=1e-6)
        assert evs[1]["args"]["worker"] == 1
        json.dumps(doc)  # must be serializable as-is


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestJsonLogger:
    def test_rate_limit_and_suppressed_count(self):
        clock = [100.0]
        log = JsonLogger("t", min_interval_s=1.0, time_fn=lambda: clock[0])
        out = io.StringIO()
        set_log_stream(out)
        try:
            assert log.event("shed", scene="a")
            assert not log.event("shed", scene="a")
            assert not log.event("shed", scene="a")
            assert log.event("other")  # separate gate per event
            clock[0] += 1.5
            assert log.event("shed", scene="a")
        finally:
            set_log_stream(None)
        lines = [json.loads(l) for l in out.getvalue().splitlines()]
        assert [l["event"] for l in lines] == ["shed", "other", "shed"]
        assert lines[2]["suppressed"] == 2
        assert lines[0]["subsystem"] == "t" and lines[0]["scene"] == "a"

    def test_force_bypasses_the_gate(self):
        log = JsonLogger("t", min_interval_s=3600.0)
        out = io.StringIO()
        set_log_stream(out)
        try:
            assert log.event("death", worker=0)
            assert log.event("death", worker=0, force=True)
        finally:
            set_log_stream(None)
        assert len(out.getvalue().splitlines()) == 2


# ----------------------------------------------------------------------
# the deprecation shim
# ----------------------------------------------------------------------
def test_serve_metrics_shim_warns_and_reexports():
    import importlib

    import repro.serve.metrics as legacy

    with pytest.deprecated_call():
        legacy = importlib.reload(legacy)
    from repro.obs.recorders import LatencyRecorder

    assert legacy.LatencyRecorder is LatencyRecorder


# ----------------------------------------------------------------------
# cluster wiring: parity, traced kills, the /metrics endpoint
# ----------------------------------------------------------------------
from repro.cluster.frontend import ClusterFrontend  # noqa: E402
from repro.cluster.loadgen import _rpc  # noqa: E402
from repro.core.api import ShortestPathIndex  # noqa: E402
from repro.serve import shm as rshm  # noqa: E402
from repro.workloads.generators import random_disjoint_rects  # noqa: E402


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = set(rshm.list_segments())
    yield
    leaked = set(rshm.list_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="module")
def scene_data():
    rects_a = random_disjoint_rects(7, seed=1)
    rects_b = random_disjoint_rects(5, seed=2)
    return {
        "a": (rects_a, ShortestPathIndex.build(rects_a)),
        "b": (rects_b, ShortestPathIndex.build(rects_b)),
    }


async def _open_rpc(fe, *msgs):
    reader, writer = await asyncio.open_connection(fe.host, fe.port)
    try:
        return [await _rpc(reader, writer, m) for m in msgs]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestClusterObs:
    def test_stats_verb_is_a_view_over_the_registry(self, scene_data):
        # the drift satellite: the numbers `stats` reports must BE the
        # registry's counters, not parallel book-keeping
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            async with ClusterFrontend(scenes, workers=2) as fe:
                _, idx_a = scene_data["a"]
                vs = idx_a.vertices()
                for i in range(5):
                    (r,) = await _open_rpc(
                        fe,
                        {"id": i, "op": "length", "scene": "a",
                         "p": list(vs[0]), "q": list(vs[-1])},
                    )
                    assert r["ok"]
                os.kill(fe.workers[0].proc.pid, signal.SIGKILL)
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    (r,) = await _open_rpc(
                        fe,
                        {"id": 9, "op": "length", "scene": "a",
                         "p": list(vs[0]), "q": list(vs[-1])},
                    )
                    assert r["ok"]
                    if fe.supervisor.total_restarts >= 1:
                        break
                    await asyncio.sleep(0.1)
                (st,), (mx,) = (
                    await _open_rpc(fe, {"id": 0, "op": "stats"}),
                    await _open_rpc(fe, {"id": 0, "op": "metrics"}),
                )
                stats, snap = st["result"], mx["result"]

                def total(fam):
                    return sum(
                        s["value"] for s in snap.get(fam, {}).get("series", [])
                    )

                # both probes are themselves admitted requests: the
                # metrics snapshot sits exactly one admission (its own)
                # after the stats one — any other gap would be drift
                assert int(total("repro.frontend.requests")) == (
                    stats["frontend"]["requests"] + 1
                )
                assert stats["frontend"]["sheds"] == int(
                    total("repro.frontend.shed")
                )
                assert stats["supervisor"]["total_restarts"] == int(
                    total("repro.supervisor.restarts")
                )
                assert stats["supervisor"]["total_crashes"] == int(
                    total("repro.supervisor.crashes")
                )
                assert stats["supervisor"]["total_restarts"] >= 1
                # per-scene stats agree with the per-scene counter series
                per_scene = {
                    s["labels"]["scene"]: int(s["value"])
                    for s in snap["repro.frontend.scene_requests"]["series"]
                }
                for name, m in stats["frontend"]["scenes"].items():
                    assert m["requests"] == per_scene.get(name, 0)
                # worker series arrive labeled and the snapshot renders
                assert any(
                    s["labels"].get("worker")
                    for s in snap.get("repro.worker.requests", {}).get("series", [])
                )
                text = render_openmetrics(snap)
                assert count_series(snap) >= 20
                assert text.endswith("# EOF\n")
        asyncio.run(run())

    def test_traced_request_survives_kill_with_redirect_span(self, scene_data):
        # the ISSUE acceptance drill: a traced request whose worker is
        # SIGKILLed mid-batch must come back ok with a span tree that
        # records the redirect hop and the surviving worker's service
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            async with ClusterFrontend(
                scenes, workers=2, pins={"a": 0, "b": 1}, supervise=False
            ) as fe:
                _, idx_a = scene_data["a"]
                vs = idx_a.vertices()
                async def pipelined():
                    # both frames must be in flight *before* the kill, so
                    # the length request is in the doomed worker's batch
                    from repro.cluster.protocol import read_frame, write_frame

                    reader, writer = await asyncio.open_connection(
                        fe.host, fe.port
                    )
                    try:
                        await write_frame(
                            writer,
                            {"id": 0, "op": "sleep", "scene": "a", "ms": 400,
                             "trace": True},
                        )
                        await write_frame(
                            writer,
                            {"id": 1, "op": "length", "scene": "a",
                             "trace": True,
                             "p": list(vs[0]), "q": list(vs[-1])},
                        )
                        return [await read_frame(reader) for _ in range(2)]
                    finally:
                        writer.close()
                        try:
                            await writer.wait_closed()
                        except (ConnectionError, OSError):
                            pass

                client = asyncio.ensure_future(pipelined())
                await asyncio.sleep(0.15)  # let the batch reach worker 0
                os.kill(fe.workers[0].proc.pid, signal.SIGKILL)
                r0, r1 = await client
                assert r1["ok"] and r1["result"] == idx_a.length(vs[0], vs[-1])
                tr = r1["trace"]
                spans = tr["spans"]
                by_name = {}
                for sp in spans:
                    by_name.setdefault(sp["name"], []).append(sp)
                assert set(by_name) >= {"request", "queue_wait", "redirect",
                                        "worker.service"}
                # one shared trace id, every span finished
                assert {sp["trace_id"] for sp in spans} == {tr["trace_id"]}
                assert all(sp["dur"] is not None for sp in spans)
                (redirect,) = by_name["redirect"]
                assert redirect["attrs"]["to_worker"] == 1
                assert redirect["attrs"]["hop"] == 1
                # the service span ran on the survivor
                assert by_name["worker.service"][-1]["attrs"]["worker"] == 1
                root = by_name["request"][0]
                assert root["attrs"]["redirects"] == 1
                # children nest under the root and inside its interval
                t_end = root["t0"] + root["dur"]
                for sp in spans:
                    if sp is root:
                        continue
                    assert sp["parent_id"] == root["span_id"]
                    assert sp["t0"] >= root["t0"] - 0.05
                    assert sp["t0"] + sp["dur"] <= t_end + 0.05
                # the trace verb replays the same spans from the buffer
                (dump,) = await _open_rpc(
                    fe, {"id": 0, "op": "trace", "trace_id": tr["trace_id"]}
                )
                got = {s["span_id"] for s in dump["result"]["spans"]}
                assert got == {s["span_id"] for s in spans}
                # and they convert to chrome format
                doc = chrome_trace(dump["result"]["spans"])
                assert len(doc["traceEvents"]) == len(spans)
        asyncio.run(run())

    def test_untraced_requests_carry_no_trace(self, scene_data):
        async def run():
            scenes = {"a": {"obstacles": scene_data["a"][0]}}
            async with ClusterFrontend(scenes, workers=1) as fe:
                _, idx_a = scene_data["a"]
                vs = idx_a.vertices()
                (r,) = await _open_rpc(
                    fe,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                )
                assert r["ok"] and "trace" not in r
                assert fe.span_buffer.snapshot() == []
        asyncio.run(run())

    def test_metrics_endpoint_speaks_openmetrics(self, scene_data):
        async def run():
            scenes = {"a": {"obstacles": scene_data["a"][0]}}
            async with ClusterFrontend(scenes, workers=1, metrics_port=0) as fe:
                assert fe.metrics_port not in (None, 0)
                _, idx_a = scene_data["a"]
                vs = idx_a.vertices()
                (r,) = await _open_rpc(
                    fe,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                )
                assert r["ok"]

                async def http_get(path):
                    reader, writer = await asyncio.open_connection(
                        fe.host, fe.metrics_port
                    )
                    writer.write(
                        f"GET {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode()
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                    head, _, body = raw.partition(b"\r\n\r\n")
                    return head.decode(), body.decode()

                head, body = await http_get("/metrics")
                assert head.startswith("HTTP/1.0 200")
                assert CONTENT_TYPE in head
                assert body.endswith("# EOF\n")
                for needle in (
                    "repro_frontend_requests_total",
                    "repro_frontend_latency_seconds_bucket",
                    "repro_worker_requests_total",
                    "repro_store_resident",
                    "repro_server_requests",
                ):
                    assert needle in body, f"{needle} missing from scrape"
                head404, _ = await http_get("/nope")
                assert head404.startswith("HTTP/1.0 404")
        asyncio.run(run())
