"""Unit tests for repro.geometry.primitives."""

import pytest

from repro.errors import DisjointnessError, GeometryError
from repro.geometry.primitives import (
    ALL_TRANSFORMS,
    IDENTITY,
    Point,
    Rect,
    Transform,
    all_coords,
    bbox_of_points,
    bbox_of_rects,
    dist,
    validate_disjoint,
)


class TestDist:
    def test_zero(self):
        assert dist((3, 4), (3, 4)) == 0

    def test_axis_aligned(self):
        assert dist((0, 0), (5, 0)) == 5
        assert dist((0, 0), (0, 7)) == 7

    def test_general(self):
        assert dist((1, 2), (4, 6)) == 7

    def test_symmetric(self):
        assert dist((-3, 5), (2, -1)) == dist((2, -1), (-3, 5)) == 11


class TestRect:
    def test_corners(self):
        r = Rect(1, 2, 5, 7)
        assert r.sw == (1, 2)
        assert r.se == (5, 2)
        assert r.nw == (1, 7)
        assert r.ne == (5, 7)
        assert r.vertices == ((1, 2), (5, 2), (5, 7), (1, 7))

    def test_dimensions(self):
        r = Rect(1, 2, 5, 7)
        assert r.width == 4
        assert r.height == 5
        assert r.center2 == (6, 9)

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Rect(1, 1, 1, 5)
        with pytest.raises(GeometryError):
            Rect(1, 5, 3, 5)
        with pytest.raises(GeometryError):
            Rect(5, 1, 3, 4)

    def test_containment_closed_vs_open(self):
        r = Rect(0, 0, 4, 4)
        assert r.contains((0, 0)) and r.contains((4, 4))
        assert not r.contains_interior((0, 2))
        assert r.contains_interior((2, 2))
        assert r.on_boundary((0, 2))
        assert not r.on_boundary((2, 2))
        assert not r.contains((5, 2))

    def test_interiors_intersect(self):
        a = Rect(0, 0, 4, 4)
        assert a.interiors_intersect(Rect(3, 3, 6, 6))
        assert not a.interiors_intersect(Rect(4, 0, 8, 4))  # shared edge
        assert not a.interiors_intersect(Rect(5, 5, 8, 8))
        assert a.touches_or_intersects(Rect(4, 0, 8, 4))

    def test_segment_blocking(self):
        r = Rect(2, 2, 6, 6)
        assert r.blocks_h_segment(4, 0, 10)
        assert not r.blocks_h_segment(2, 0, 10)  # along the boundary
        assert not r.blocks_h_segment(6, 0, 10)
        assert not r.blocks_h_segment(4, 0, 2)  # stops at the wall
        assert r.blocks_h_segment(4, 10, 0)  # direction-agnostic
        assert r.blocks_v_segment(4, 0, 10)
        assert not r.blocks_v_segment(2, 0, 10)


class TestTransform:
    def test_identity(self):
        assert IDENTITY.apply((3, -4)) == (3, -4)

    def test_flip_and_swap(self):
        t = Transform(sx=-1, sy=1, swap=True)
        assert t.apply((2, 5)) == (5, -2)

    def test_group_has_eight_distinct_elements(self):
        images = {tuple(t.apply(p) for p in [(1, 2), (3, 5)]) for t in ALL_TRANSFORMS}
        assert len(images) == 8

    def test_inverse_roundtrip(self):
        pts = [(0, 0), (3, -7), (-2, 9), (11, 4)]
        for t in ALL_TRANSFORMS:
            inv = t.inverse()
            for p in pts:
                assert inv.apply(t.apply(p)) == p

    def test_compose_matches_sequential_application(self):
        pts = [(1, 2), (-3, 4), (7, -5)]
        for outer in ALL_TRANSFORMS:
            for inner in ALL_TRANSFORMS:
                comp = outer.compose(inner)
                for p in pts:
                    assert comp.apply(p) == outer.apply(inner.apply(p))

    def test_apply_rect_normalises(self):
        r = Rect(1, 2, 5, 7)
        for t in ALL_TRANSFORMS:
            rr = t.apply_rect(r)
            assert rr.xlo < rr.xhi and rr.ylo < rr.yhi
            # corner sets must map onto each other
            assert {t.apply(v) for v in r.vertices} == set(rr.vertices)

    def test_rect_roundtrip(self):
        r = Rect(-3, 4, 9, 11)
        for t in ALL_TRANSFORMS:
            assert t.inverse().apply_rect(t.apply_rect(r)) == r


class TestBBoxAndValidation:
    def test_bbox_points(self):
        assert bbox_of_points([(1, 5), (-2, 3), (4, 4)]) == (-2, 3, 4, 5)

    def test_bbox_points_empty(self):
        with pytest.raises(GeometryError):
            bbox_of_points([])

    def test_bbox_rects(self):
        assert bbox_of_rects([Rect(0, 0, 2, 2), Rect(5, -1, 7, 3)]) == (0, -1, 7, 3)

    def test_validate_disjoint_accepts_touching(self):
        validate_disjoint([Rect(0, 0, 2, 2), Rect(2, 0, 4, 2), Rect(0, 2, 4, 3)])

    def test_validate_disjoint_rejects_overlap(self):
        with pytest.raises(DisjointnessError):
            validate_disjoint([Rect(0, 0, 4, 4), Rect(3, 3, 6, 6)])

    def test_validate_disjoint_large_random(self):
        from repro.workloads.generators import random_disjoint_rects

        rects = random_disjoint_rects(120, seed=7)
        validate_disjoint(rects)  # must not raise

    def test_all_coords(self):
        xs, ys = all_coords([Rect(0, 1, 2, 3)], [(9, 9)])
        assert xs == [0, 2, 9]
        assert ys == [1, 3, 9]


class TestPointTyping:
    def test_point_is_plain_tuple(self):
        p: Point = (1, 2)
        assert isinstance(p, tuple)
