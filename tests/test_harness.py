"""The verification toolkit must itself catch defects (meta-tests)."""

import numpy as np
import pytest

from harness import assert_valid_path, assert_valid_path_raw
from repro.core.api import ShortestPathIndex
from repro.core.crosscheck import check_scene, shrink_scene, validate_path
from repro.geometry.primitives import Rect
from repro.workloads.generators import plus_polygon


class TestValidatePathCatches:
    def setup_method(self):
        self.rects = [Rect(2, 2, 6, 6)]
        self.idx = ShortestPathIndex.build(self.rects)

    def test_good_path_accepted(self):
        path = [(0, 0), (2, 0), (2, 2)]
        assert_valid_path(self.idx, path, (0, 0), (2, 2), 4)

    def test_wrong_endpoints_rejected(self):
        assert validate_path(self.idx, [(0, 0), (1, 0)], (0, 0), (2, 2), 4)

    def test_diagonal_segment_rejected(self):
        probs = validate_path(self.idx, [(0, 0), (2, 2)], (0, 0), (2, 2), 4)
        assert any("rectilinear" in m for m in probs)

    def test_obstacle_crossing_rejected(self):
        path = [(0, 4), (8, 4)]  # straight through the rect
        probs = validate_path(self.idx, path, (0, 4), (8, 4), 8)
        assert any("interior" in m for m in probs)

    def test_wrong_length_rejected(self):
        path = [(0, 0), (2, 0), (2, 2)]
        probs = validate_path(self.idx, path, (0, 0), (2, 2), 99)
        assert any("length" in m for m in probs)

    def test_seam_run_rejected(self):
        plus = plus_polygon(0, 0, 5, 2)
        idx = ShortestPathIndex.build([plus])
        # straight through the east-arm seam at x = 2
        cheat = [(2, -3), (2, 3)]
        probs = validate_path(idx, cheat, (2, -3), (2, 3), 6)
        assert any("interior" in m for m in probs)
        with pytest.raises(AssertionError):
            assert_valid_path_raw(idx.rects, cheat, (2, -3), (2, 3), 6, seams=idx.seams)


class TestCrossCheckCatches:
    def test_agreeing_scene_reports_nothing(self):
        assert check_scene([Rect(0, 0, 3, 3), Rect(6, 1, 9, 5)], seed=1) == []

    def test_overlapping_scene_reports_build_failure(self):
        probs = check_scene([Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)], seed=1)
        assert probs and "build failed" in probs[0]


class TestShrink:
    def test_shrinks_to_the_culprit(self):
        bad = Rect(50, 50, 54, 54)
        scene = [Rect(i * 10, 0, i * 10 + 4, 4) for i in range(5)] + [bad]

        def fails(obs, container):
            return bad in obs

        small, container = shrink_scene(scene, None, fails)
        assert small == [bad]
        assert container is None

    def test_budget_bounds_rechecks(self):
        calls = []

        def fails(obs, container):
            calls.append(1)
            return True

        scene = [Rect(i * 10, 0, i * 10 + 4, 4) for i in range(30)]
        shrink_scene(scene, None, fails, budget=10)
        assert len(calls) <= 10


def test_matrix_diff_localizes_first_mismatch():
    from repro.core.crosscheck import _matrix_diff

    pts = [(0, 0), (1, 1)]
    a = np.array([[0.0, 5.0], [5.0, 0.0]])
    b = np.array([[0.0, 7.0], [7.0, 0.0]])
    msgs = _matrix_diff("x", a, pts, "y", b, pts)
    assert msgs and "(0, 0)" in msgs[0] and "5.0 vs 7.0" in msgs[0]
