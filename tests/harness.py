"""Shared verification toolkit for the test suite.

Thin assertion wrappers around :mod:`repro.core.crosscheck` so every test
validates paths and cross-checks engines the same way:

``assert_valid_path(idx, path, p, q, expected_len)``
    the polyline is rectilinear, endpoint-correct, clear of every obstacle
    interior (polygon interiors included), inside the container, and
    exactly as long as reported.  The polyline is normalized (duplicate
    vertices dropped, collinear runs merged) and the exact bend count is
    returned — pass ``expected_bends`` to assert it, as the link-query
    tests do.

``assert_engines_agree(obstacles, ...)``
    parallel vs sequential vs grid-Dijkstra baseline report identical
    vertex matrices, valid sampled paths, and oracle-exact arbitrary-point
    queries.  On failure the scene is shrunk and dumped as replayable JSON
    under ``tests/failures/`` (load it back with
    ``python -m repro query <dump> ...`` or ``scenefile.load_scene``).
"""

from __future__ import annotations

import pathlib

from repro.core.crosscheck import check_scene, shrink_scene, validate_path
from repro.workloads.scenefile import save_scene

FAILURE_DIR = pathlib.Path(__file__).parent / "failures"


def assert_valid_path(idx, path, p, q, expected_len=None, expected_bends=None) -> int:
    """Assert one reported polyline is fully valid (see module docstring)
    and return its exact bend count (counted on the normalized polyline,
    so collinear or duplicate vertices never inflate it)."""
    from repro.links.solver import count_bends

    if expected_len is None:
        expected_len = idx.length(p, q)
    problems = validate_path(
        idx, path, p, q, expected_len, expected_bends=expected_bends
    )
    assert not problems, "; ".join(problems)
    return count_bends(path)


def assert_valid_path_raw(
    rects, path, p, q, expected_len, seams=(), container=None,
    expected_bends=None,
) -> int:
    """assert_valid_path for engine-level tests that have no facade index:
    pass the obstacle rects (and seams/container) directly."""
    from repro.links.solver import count_bends

    class _Shim:
        def __init__(self):
            self.rects = list(rects)
            self.seams = list(seams)
            self.container = container

    problems = validate_path(
        _Shim(), path, p, q, expected_len, expected_bends=expected_bends
    )
    assert not problems, "; ".join(problems)
    return count_bends(path)


def assert_engines_agree(
    obstacles, container=None, extra_points=(), seed=0, label="scene", **kw
) -> None:
    """Assert the three engines agree on one scene; dump a shrunk
    replayable counterexample JSON if they do not."""
    problems = check_scene(
        obstacles, container, extra_points=extra_points, seed=seed, **kw
    )
    if not problems:
        return
    small, small_container = shrink_scene(
        obstacles, container,
        lambda obs, cont: bool(check_scene(obs, cont, seed=seed, **kw)),
    )
    FAILURE_DIR.mkdir(exist_ok=True)
    dump = FAILURE_DIR / f"{label}_{seed}.json"
    save_scene(dump, small, small_container)
    raise AssertionError(
        f"engines disagree on {label} (seed {seed}): {problems[0]} "
        f"[{len(problems)} problem(s); shrunk replay scene: {dump}]"
    )
