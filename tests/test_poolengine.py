"""The multicore build engine (``parallel-mp``) and its worker pool.

The contract under test is strict: dispatching separator subtrees and
(min,+) conquer blocks to worker processes must change *nothing*
observable about the answer — matrices byte-identical to the single
process ``parallel`` engine, identical simulated PRAM totals, identical
recursion statistics, and subtree-cache deposits a later incremental
repair can reuse interchangeably.  The pool itself must fail loudly and
clean (a dead worker is a one-line ``EngineError``, never a hang, and
never a leaked ``/dev/shm`` segment or orphaned process).
"""

import os
import subprocess
import time

import numpy as np
import pytest

from repro.core.allpairs import ParallelEngine
from repro.core.mpengine import ParallelMPEngine
from repro.core.pool import WorkerPool, default_jobs, get_pool, shutdown_pool
from repro.errors import EngineError
from repro.geometry.primitives import Rect
from repro.pipeline import StageCache, build_index, update_index
from repro.pram.machine import PRAM
from repro.scene import Scene, SceneDelta
from repro.serve.shm import list_segments
from repro.workloads.generators import random_disjoint_rects, random_polygon_scene
from repro import kernels


def _rect_scene(n, seed):
    return Scene(tuple(random_disjoint_rects(n, seed=seed)))


@pytest.fixture(autouse=True)
def _pool_hygiene():
    """Every test starts and ends with no module pool and no segments."""
    shutdown_pool()
    yield
    shutdown_pool()
    assert list_segments() == []


# ----------------------------------------------------------------------
# byte identity with the single-process engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,seed", [(12, 0), (40, 7), (90, 3)])
def test_cold_build_byte_identical(n, seed):
    scene = _rect_scene(n, seed)
    a = build_index(scene, engine="parallel", cache=StageCache(max_entries=0))
    b = build_index(
        scene, engine="parallel-mp", jobs=2, cache=StageCache(max_entries=0)
    )
    assert list(a.index.points) == list(b.index.points)
    assert a.index.matrix.tobytes() == b.index.matrix.tobytes()
    assert (a.pram.time, a.pram.work, a.pram.max_ops) == (
        b.pram.time, b.pram.work, b.pram.max_ops,
    )
    assert b.provenance["pool"]["workers"] == 2
    assert b.provenance["pool"]["tasks"] > 0


def test_polygon_scene_byte_identical():
    obstacles = random_polygon_scene(n_polygons=2, n_rects=4, seed=11)
    scene = Scene.from_obstacles(obstacles)
    a = build_index(scene, engine="parallel", cache=StageCache(max_entries=0))
    b = build_index(
        scene, engine="parallel-mp", jobs=2, cache=StageCache(max_entries=0)
    )
    assert a.index.matrix.tobytes() == b.index.matrix.tobytes()


def test_engine_stats_match_single_process():
    """Worker-side recursion stats merge into the same totals the
    single-process engine reports (nothing double counted, nothing
    dropped)."""
    scene = _rect_scene(40, 7)
    p1, p2 = PRAM("sp"), PRAM("mp")
    e1 = ParallelEngine(list(scene.obstacles), [], p1, validate=False)
    i1 = e1.build()
    e2 = ParallelMPEngine(
        list(scene.obstacles), [], p2, validate=False, pool=get_pool(2), jobs=2
    )
    i2 = e2.build()
    assert i1.matrix.tobytes() == i2.matrix.tobytes()
    s1, s2 = vars(e1.stats), vars(e2.stats)
    assert s1 == s2
    assert e2.pool_stats["tasks"] > 0


def test_incremental_repair_byte_identical():
    rects = list(random_disjoint_rects(40, seed=7))
    scene = Scene(tuple(rects))
    cache = StageCache(max_entries=256, max_bytes=64 << 20)
    idx0 = build_index(
        scene, engine="parallel-mp", jobs=2, incremental=True, cache=cache
    )
    idx1 = update_index(idx0, SceneDelta.delete(rects[20]))
    cold = build_index(
        Scene(tuple(r for r in rects if r != rects[20])),
        engine="parallel",
        cache=StageCache(max_entries=0),
    )
    assert idx1.index.matrix.tobytes() == cold.index.matrix.tobytes()
    assert idx1.provenance["engine"] == "parallel-mp"
    assert "pool" in idx1.provenance


def test_subtree_deposits_interchangeable_with_parallel():
    """A repair seeded by a parallel-mp build reuses exactly as much as
    one seeded by parallel — the engines share one subtree-entry
    population."""
    rects = list(random_disjoint_rects(40, seed=7))
    scene = Scene(tuple(rects))
    reports = {}
    for engine in ("parallel", "parallel-mp"):
        cache = StageCache(max_entries=256, max_bytes=64 << 20)
        idx0 = build_index(
            scene, engine=engine, jobs=2, incremental=True, cache=cache
        )
        idx1 = update_index(idx0, SceneDelta.delete(rects[20]))
        reports[engine] = idx1.provenance["subtree"]
    assert reports["parallel"] == reports["parallel-mp"]


def test_jobs_one_runs_inline():
    """``jobs=1`` is the honest single-core baseline: no pool, no worker
    processes, same bytes."""
    scene = _rect_scene(20, 1)
    a = build_index(scene, engine="parallel", cache=StageCache(max_entries=0))
    b = build_index(
        scene, engine="parallel-mp", jobs=1, cache=StageCache(max_entries=0)
    )
    assert a.index.matrix.tobytes() == b.index.matrix.tobytes()
    assert b.provenance["pool"]["inline"] is True
    assert b.provenance["pool"]["workers"] == 0


def test_mp_build_is_deterministic():
    """Two parallel-mp builds of the same scene are byte-identical to
    each other (result-arrival order must not leak into the answer)."""
    scene = _rect_scene(40, 5)
    mats = [
        build_index(
            scene, engine="parallel-mp", jobs=2, cache=StageCache(max_entries=0)
        ).index.matrix.tobytes()
        for _ in range(2)
    ]
    assert mats[0] == mats[1]


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------
def test_worker_crash_is_one_line_error_and_clean_shutdown():
    pool = WorkerPool(2)
    pids = [p.pid for p in pool._workers]
    pool.submit("repro.core.mpengine:_task_solve", {}, kind="__crash__")
    with pytest.raises(EngineError) as ei:
        # the crash task never produces a result; liveness polling must
        # turn the dead worker into an error, not a hang
        pool.next_result()
    msg = str(ei.value)
    assert "\n" not in msg
    assert "died" in msg
    assert pool.closed
    assert list_segments() == []
    deadline = time.time() + 5
    while time.time() < deadline:
        alive = [pid for pid in pids if _pid_alive(pid)]
        if not alive:
            break
        time.sleep(0.05)
    assert not alive, f"worker processes leaked: {alive}"


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    # a zombie still answers signal 0; check the process table state
    try:
        out = subprocess.run(
            ["ps", "-o", "stat=", "-p", str(pid)],
            capture_output=True, text=True,
        ).stdout.strip()
    except OSError:
        return True
    return bool(out) and not out.startswith("Z")


def test_build_recovers_after_pool_crash():
    """A crashed pool closes; the next build gets a fresh one from
    get_pool and succeeds."""
    pool = get_pool(2)
    pool.submit("repro.core.mpengine:_task_solve", {}, kind="__crash__")
    with pytest.raises(EngineError):
        pool.next_result()
    assert pool.closed
    scene = _rect_scene(20, 2)
    idx = build_index(
        scene, engine="parallel-mp", jobs=2, cache=StageCache(max_entries=0)
    )
    ref = build_index(scene, engine="parallel", cache=StageCache(max_entries=0))
    assert idx.index.matrix.tobytes() == ref.index.matrix.tobytes()


def test_get_pool_reuses_and_resizes():
    p2 = get_pool(2)
    assert get_pool(2) is p2
    p3 = get_pool(3)
    assert p3 is not p2
    assert p2.closed and not p3.closed
    assert p3.jobs == 3


def test_engine_error_when_pool_unavailable_degrades_inline(monkeypatch):
    """If the pool cannot start at all, the build degrades to the inline
    solve (same bytes) and records why."""
    import repro.core.pool as poolmod

    def boom(jobs):
        raise OSError("no processes for you")

    monkeypatch.setattr(poolmod, "get_pool", boom)
    scene = _rect_scene(16, 4)
    idx = build_index(
        scene, engine="parallel-mp", jobs=2, cache=StageCache(max_entries=0)
    )
    ref = build_index(scene, engine="parallel", cache=StageCache(max_entries=0))
    assert idx.index.matrix.tobytes() == ref.index.matrix.tobytes()
    assert "OSError" in idx.provenance["pool"]["pool_error"]
    assert idx.provenance["pool"]["inline"] is True


def test_pool_counters_flow_through_registry():
    from repro.obs.registry import default_registry

    scene = _rect_scene(40, 9)
    build_index(scene, engine="parallel-mp", jobs=2, cache=StageCache(max_entries=0))
    snap = default_registry().snapshot()
    assert "repro.build.pool.tasks" in snap
    assert "repro.build.pool.workers_spawned" in snap
    total = sum(s["value"] for s in snap["repro.build.pool.tasks"]["series"])
    assert total > 0


# ----------------------------------------------------------------------
# compiled kernels (numba optional — the probe must stay honest)
# ----------------------------------------------------------------------
def test_jit_provenance_is_honest():
    scene = _rect_scene(16, 6)
    idx = build_index(
        scene, engine="parallel", jit=True, cache=StageCache(max_entries=0)
    )
    prov = idx.provenance["jit"]
    assert prov["requested"] is True
    assert prov["available"] == kernels.available()
    assert prov["active"] == kernels.available()
    if kernels.available():
        assert prov["backend"].startswith("numba-")
    else:
        assert prov["backend"] == "numpy"
    off = build_index(scene, engine="parallel", cache=StageCache(max_entries=0))
    assert off.provenance["jit"]["requested"] is False
    assert off.provenance["jit"]["active"] is False


def test_jit_on_matches_jit_off_bytes():
    """jit=True must never change the answer — with numba installed this
    compares compiled vs numpy kernels; without, it checks the fallback
    path really is the plain solve."""
    scene = _rect_scene(30, 8)
    on = build_index(
        scene, engine="parallel-mp", jobs=2, jit=True,
        cache=StageCache(max_entries=0),
    )
    off = build_index(
        scene, engine="parallel-mp", jobs=2, jit=False,
        cache=StageCache(max_entries=0),
    )
    assert on.index.matrix.tobytes() == off.index.matrix.tobytes()


@pytest.mark.skipif(not kernels.available(), reason="numba not installed")
def test_compiled_smawk_matches_numpy():
    from repro.monge.smawk import smawk_row_minima_array

    rng = np.random.default_rng(0)
    for trial in range(30):
        al = int(rng.integers(1, 30))
        inner = int(rng.integers(1, 30))
        bc = int(rng.integers(1, 30))
        offsets = rng.integers(0, 40, size=(al, inner)).astype(np.float64)
        # a random Monge matrix: row/col offsets plus -s·k·j (mixed second
        # difference -s ≤ 0); s = 0 every third trial makes ties dense so
        # the leftmost-argmin rule is exercised hard
        s = 0.0 if trial % 3 == 0 else float(rng.integers(1, 4))
        k = np.arange(inner, dtype=np.float64)
        j = np.arange(bc, dtype=np.float64)
        b = (
            rng.integers(0, 40, size=(inner, 1)).astype(np.float64)
            + rng.integers(0, 40, size=(1, bc)).astype(np.float64)
            - s * np.outer(k, j)
        )
        if trial % 4 == 0 and inner > 1:
            b[int(rng.integers(0, inner)), :] = np.inf  # unreachable row
        # brute-force leftmost argmin is the shared oracle for both paths
        full = offsets[:, :, None] + b[None, :, :]
        ref = np.argmin(full, axis=1)
        with kernels.use_jit(False):
            got_np = smawk_row_minima_array(offsets, b)
        with kernels.use_jit(True):
            got_jit = smawk_row_minima_array(offsets, b)
        assert np.array_equal(ref, got_np), f"numpy path trial {trial}"
        assert np.array_equal(got_np, got_jit), f"jit path trial {trial}"


@pytest.mark.skipif(not kernels.available(), reason="numba not installed")
def test_compiled_clear_l1_matches_numpy():
    from repro.core.baseline import clear_l1_block

    rects = list(random_disjoint_rects(8, seed=1))
    pts = [(x, y) for x in range(0, 40, 7) for y in range(0, 20, 5)]
    with kernels.use_jit(False):
        ref = clear_l1_block(pts, pts, rects)
    with kernels.use_jit(True):
        got = clear_l1_block(pts, pts, rects)
    assert np.array_equal(ref, got)


def test_probe_reports_without_numba():
    info = kernels.probe()
    assert info["checked"] is True
    assert isinstance(info["available"], bool)
    if not info["available"]:
        assert info["error"]
        assert kernels.backend() == "numpy"


# ----------------------------------------------------------------------
# shared-memory transport helpers (reused by serve/ and the pool)
# ----------------------------------------------------------------------
def test_shm_block_roundtrip():
    from multiprocessing import shared_memory

    from repro.serve.shm import build_toc, read_array_block, write_array_block

    arrays = {
        "a": np.arange(12, dtype=np.float64).reshape(3, 4),
        "b": np.array([[1, 2], [3, 4]], dtype=np.int64),
        "c": np.empty((0, 3), dtype=np.float64),
    }
    toc, size = build_toc(arrays)
    seg = shared_memory.SharedMemory(create=True, size=max(size, 1))
    try:
        write_array_block(seg.buf, toc, arrays)
        back = read_array_block(seg.buf, toc)
        for name, arr in arrays.items():
            assert back[name].dtype == arr.dtype
            assert back[name].shape == arr.shape
            assert np.array_equal(back[name], arr)
        out = {name: np.array(v) for name, v in back.items()}
        del back
    finally:
        seg.close()
        seg.unlink()
    assert np.array_equal(out["a"], arrays["a"])


def test_default_jobs_bounded():
    j = default_jobs()
    assert 1 <= j <= 8


# ----------------------------------------------------------------------
# worker-side handlers, driven inline (subprocess code is invisible to
# coverage; the handlers are plain functions, so exercise them here too)
# ----------------------------------------------------------------------
def test_worker_main_inline_roundtrip():
    import queue

    from repro.core.pool import _worker_main

    tasks, results = queue.Queue(), queue.Queue()
    rects = list(random_disjoint_rects(8, seed=0))
    ctx = {
        "rects": rects, "seams": (), "leaf_size": 6,
        "monge_dispatch": True, "divide": "median",
    }
    tasks.put({
        "id": 1, "kind": "leaf", "fn": "repro.core.mpengine:_task_solve",
        "payload": {
            "ctx": ctx, "kind": "leaf",
            "rect_idx": tuple(range(len(rects))), "interface": (),
            "depth": 0, "tags": {}, "next_chain_id": 0,
        },
        "seg": None, "jit": False,
    })
    tasks.put({
        "id": 2, "kind": "task", "fn": "repro.core.pool:_resolve",
        "payload": {},  # _resolve() called with a dict explodes → error path
        "seg": None, "jit": False,
    })
    tasks.put(None)
    _worker_main(tasks, results)
    status, tid, wall, result, arrays = results.get_nowait()
    assert (status, tid) == ("ok", 1)
    assert result["n"] == arrays["matrix"].shape[0]
    assert result["pram"][1] > 0  # leaf work was charged worker-side
    status, tid, _, msg, detail = results.get_nowait()
    assert (status, tid) == ("error", 2)
    assert "\n" not in msg and detail  # one-line error + full traceback


def test_task_minplus_inline_matches_direct_product():
    from repro.core.mpengine import _task_minplus
    from repro.monge.multiply import minplus_naive

    rng = np.random.default_rng(0)
    a = rng.integers(0, 20, size=(6, 5)).astype(np.float64)
    b = rng.integers(0, 20, size=(5, 7)).astype(np.float64)
    body, arrays = _task_minplus({"a": a, "b": b, "certify": False})
    ref = minplus_naive(a, b, PRAM("ref"))
    assert np.array_equal(arrays["matrix"], ref)
    assert body["fast"] == 0
    body2, arrays2 = _task_minplus({"a": a, "b": b, "certify": True})
    assert np.array_equal(arrays2["matrix"], ref)  # naive/monge agree
