#!/usr/bin/env python3
"""Serving demo: snapshot a scene, hold several resident, batch queries.

Walks the three layers of ``repro.serve``:

1. snapshot — pay the parallel build once, persist it, reload in
   milliseconds;
2. SceneStore — many named scenes, lazy materialization, LRU eviction
   bounded by resident bytes;
3. QueryServer — a mixed multi-scene batch answered in order, with
   same-scene length requests coalesced into one matrix gather.

Run:  python examples/serve_demo.py
"""

import tempfile
import time
from pathlib import Path

from repro import ShortestPathIndex
from repro.serve import QueryServer, Request, SceneStore, load, read_header, save
from repro.workloads.generators import random_disjoint_rects
from repro.workloads.requests import random_request_stream, scene_endpoints


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))

    # -- 1. snapshot: build once, reload forever -----------------------
    rects = random_disjoint_rects(48, seed=11)
    t0 = time.perf_counter()
    idx = ShortestPathIndex.build(rects, engine="parallel")
    build_s = time.perf_counter() - t0
    snap = save(idx, workdir / "campus.rsp")
    t0 = time.perf_counter()
    reloaded = load(snap)
    load_s = time.perf_counter() - t0
    header = read_header(snap)
    print(f"built n={header['n_rects']} in {build_s * 1e3:.0f} ms, "
          f"snapshot is {snap.stat().st_size:,} bytes, "
          f"reload took {load_s * 1e3:.1f} ms "
          f"({build_s / load_s:.0f}x faster than rebuilding)")
    a, b = idx.vertices()[0], idx.vertices()[-1]
    assert reloaded.length(a, b) == idx.length(a, b)

    # -- 2. a store of scenes, bounded residency ------------------------
    store = SceneStore(max_bytes=2 << 20)
    store.add_snapshot("campus", snap)
    store.add_scene("depot", random_disjoint_rects(20, seed=3))
    store.add_scene("port", random_disjoint_rects(24, seed=4), engine="sequential")
    store.get("campus")  # materializes from disk
    store.get("depot")   # materializes by building
    print(f"store after two gets: {store.stats()}")

    # -- 3. batched, coalesced queries ----------------------------------
    server = QueryServer(store)
    names = store.names()
    endpoints = {n: scene_endpoints(store.get(n), seed=7) for n in names}
    requests = random_request_stream(endpoints, 600, seed=9)
    t0 = time.perf_counter()
    for r in requests:
        server.submit([r])  # one Python round-trip per request
    per_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = server.submit(requests)  # one coalesced group per scene
    co_s = time.perf_counter() - t0
    print(f"{len(requests)} requests over {len(names)} scenes: "
          f"per-request {per_s * 1e3:.0f} ms, coalesced {co_s * 1e3:.1f} ms "
          f"({per_s / co_s:.0f}x)")
    print(f"server: {server.stats()}")

    # answers are position-aligned with the submitted batch
    first = requests[0]
    direct = store.get(first.scene).length(first.p, first.q)
    assert batched[0] == direct
    path = server.submit([Request("campus", a, b, op="path")])[0]
    print(f"campus path {a} -> {b} has {len(path) - 1} segments, "
          f"length {store.get('campus').length(a, b)}")


if __name__ == "__main__":
    main()
