#!/usr/bin/env python3
"""Observability demo: one registry, one scrape, one span waterfall.

Walks the `repro.obs` layer end to end on a live 2-worker cluster:

1. build two scenes and start a :class:`ClusterFrontend` with the
   OpenMetrics endpoint enabled (``metrics_port=0`` picks a free port);
2. send a few plain requests, then a **traced** request — the response
   carries its span tree (admission, queue wait, worker RPC, and the
   worker's own service span, propagated back over the pipe);
3. print the spans as a waterfall, offsets relative to the root;
4. scrape ``GET /metrics`` and show a few of the merged OpenMetrics
   series (worker series carry a ``worker="<id>"`` label);
5. cross-check the ``stats`` verb against the ``metrics`` verb — the
   stats counters are views over the same registry, so they agree.

Run:  python examples/obs_demo.py
"""

import asyncio

from repro.cluster import ClusterFrontend
from repro.cluster.protocol import read_frame, write_frame
from repro.obs.openmetrics import count_series
from repro.workloads.generators import random_disjoint_rects


async def rpc(host, port, *msgs):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for m in msgs:
            await write_frame(writer, m)
        return [await read_frame(reader) for _ in msgs]
    finally:
        writer.close()
        await writer.wait_closed()


async def http_get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        await writer.drain()
        return (await reader.read()).decode()
    finally:
        writer.close()
        await writer.wait_closed()


def waterfall(spans) -> None:
    """Print a span tree as an indented waterfall, one bar per span."""
    t0 = min(sp["t0"] for sp in spans)
    end = max(sp["t0"] + (sp["dur"] or 0.0) for sp in spans)
    scale = 40 / max(end - t0, 1e-9)  # chars per second
    by_parent = {}
    for sp in spans:
        by_parent.setdefault(sp["parent_id"], []).append(sp)

    def emit(parent_id, depth):
        for sp in sorted(by_parent.get(parent_id, []), key=lambda s: s["t0"]):
            off = int((sp["t0"] - t0) * scale)
            width = max(1, int((sp["dur"] or 0.0) * scale))
            bar = " " * off + "#" * width
            label = "  " * depth + sp["name"]
            attrs = {k: v for k, v in sp["attrs"].items() if v is not None}
            print(
                f"  {label:<24} {bar:<42} "
                f"{(sp['dur'] or 0.0) * 1e3:7.2f} ms  {attrs}"
            )
            emit(sp["span_id"], depth + 1)

    emit(None, 0)


async def main() -> None:
    # -- 1. two scenes, two workers, /metrics on a free port ------------
    scenes = {
        "campus": {"obstacles": random_disjoint_rects(24, seed=11)},
        "depot": {"obstacles": random_disjoint_rects(16, seed=12)},
    }
    async with ClusterFrontend(scenes, workers=2, metrics_port=0) as fe:
        print(f"cluster on {fe.host}:{fe.port}; "
              f"metrics on http://{fe.host}:{fe.metrics_port}/metrics")

        (eps,) = await rpc(fe.host, fe.port,
                           {"id": 0, "op": "endpoints", "scene": "campus"})
        verts = eps["result"]["vertices"]
        p, q = verts[0], verts[-1]

        # -- 2. a little plain traffic, then one traced request ----------
        await rpc(fe.host, fe.port, *(
            {"id": i, "op": "length", "scene": "campus", "p": p, "q": q}
            for i in range(5)
        ))
        (traced,) = await rpc(fe.host, fe.port, {
            "id": 9, "op": "length", "scene": "campus",
            "p": p, "q": q, "trace": True,
        })
        tr = traced["trace"]
        print(f"\ntraced length = {traced['result']}  "
              f"(trace_id {tr['trace_id']})")

        # -- 3. the span waterfall --------------------------------------
        print(f"span waterfall ({len(tr['spans'])} spans):")
        waterfall(tr["spans"])

        # -- 4. the OpenMetrics scrape ----------------------------------
        body = (await http_get(fe.host, fe.metrics_port, "/metrics"))
        body = body.split("\r\n\r\n", 1)[1]
        lines = [ln for ln in body.splitlines() if not ln.startswith("#")]
        print(f"\nscrape: {len(lines)} series, e.g.:")
        for needle in ("repro_frontend_requests_total",
                       "repro_worker_requests_total",
                       "repro_frontend_latency_seconds_count"):
            hit = next(ln for ln in lines if ln.startswith(needle))
            print(f"  {hit}")

        # -- 5. stats verb == registry (views, not copies) ---------------
        (stats,), (metrics,) = (
            await rpc(fe.host, fe.port, {"id": 20, "op": "stats"}),
            await rpc(fe.host, fe.port, {"id": 21, "op": "metrics"}),
        )
        snap = metrics["result"]
        fam = snap["repro.frontend.requests"]
        total = sum(s["value"] for s in fam["series"])
        # the metrics probe is itself an admitted request, hence the +1
        print(f"\nstats verb requests={stats['result']['frontend']['requests']}, "
              f"registry total={total:.0f} (incl. the probe; "
              f"{count_series(snap)} series cluster-wide)")


if __name__ == "__main__":
    asyncio.run(main())
