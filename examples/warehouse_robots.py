#!/usr/bin/env python3
"""Robot fleet dispatch in a shelf warehouse (robot-motion motivation).

Robots sit at arbitrary floor positions (not obstacle vertices), stations
sit at shelf corners.  Arbitrary-point queries (§6.4) price every
robot-station assignment in O(log n) each; path reporting (§8) then emits
the actual drive path for the chosen assignment.

Run:  python examples/warehouse_robots.py
"""

from repro import Rect, ShortestPathIndex
from repro.core.baseline import path_is_clear, path_length
from repro.viz.ascii import render_scene
from repro.workloads.generators import random_free_points


def shelves() -> list[Rect]:
    out = []
    for row in range(4):
        for col in range(3):
            x = 6 + col * 16
            y = 4 + row * 9
            out.append(Rect(x, y, x + 10, y + 3))
    return out


def main() -> None:
    rects = shelves()
    idx = ShortestPathIndex.build(rects, engine="sequential")

    robots = random_free_points(rects, 4, seed=7)
    stations = [rects[1].sw, rects[5].ne, rects[9].se, rects[10].nw]

    print("assignment cost matrix (rows=robots, cols=stations):")
    costs = []
    for r in robots:
        row = [idx.length(r, s) for s in stations]
        costs.append(row)
        print(f"  {str(r):>10}: " + "  ".join(f"{c:5}" for c in row))

    # greedy assignment (smallest cost first)
    taken_r: set[int] = set()
    taken_s: set[int] = set()
    triples = sorted(
        (costs[i][j], i, j) for i in range(len(robots)) for j in range(len(stations))
    )
    assignment = []
    for c, i, j in triples:
        if i in taken_r or j in taken_s:
            continue
        taken_r.add(i)
        taken_s.add(j)
        assignment.append((i, j, c))
    print("\ngreedy dispatch:")
    paths = []
    for i, j, c in sorted(assignment):
        path = idx.shortest_path(robots[i], stations[j])
        assert path_length(path) == c
        assert path_is_clear(path, rects)
        paths.append(path)
        print(f"  robot {robots[i]} -> station {stations[j]}  cost {c}, "
              f"{len(path) - 1} segments")

    print()
    labels = [(r, str(n)) for n, r in enumerate(robots)]
    labels += [(s, chr(ord('a') + n)) for n, s in enumerate(stations)]
    print(render_scene(rects, paths=paths, points=labels,
                       title="drive paths (*) between robots (0-3) and stations (a-d)"))


if __name__ == "__main__":
    main()
