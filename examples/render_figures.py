#!/usr/bin/env python3
"""Regenerate all 14 paper figures as ASCII drawings.

Run:  python examples/render_figures.py [figure-number]
Writes figures/figN.txt and prints them.
"""

import pathlib
import sys

from repro.viz.figures import ALL_FIGURES, figure_text


def main() -> None:
    which = [int(sys.argv[1])] if len(sys.argv) > 1 else list(ALL_FIGURES)
    outdir = pathlib.Path(__file__).resolve().parent.parent / "figures"
    outdir.mkdir(exist_ok=True)
    for k in which:
        text = figure_text(k)
        (outdir / f"fig{k:02d}.txt").write_text(text + "\n")
        print(text)
        print()
    print(f"wrote {len(which)} figure(s) to {outdir}/")


if __name__ == "__main__":
    main()
