#!/usr/bin/env python3
"""Cluster demo: a 2-worker shared-memory cluster, driven end to end.

Walks the whole `repro.cluster` stack in one process tree:

1. build two scenes and start a :class:`ClusterFrontend` — the front-end
   publishes each distance matrix into ``multiprocessing.shared_memory``
   once, spawns two workers that attach zero-copy, and routes each scene
   to its rendezvous-hashed owner;
2. talk the length-prefixed JSON protocol directly: single lengths, a
   bulk ``lengths`` batch, a path report, and an error (responses come
   back in request order, even across workers);
3. drive it with the closed-loop load generator and print the
   percentile report;
4. fetch the ``stats`` verb: per-worker service percentiles, batch-size
   histograms, store/server counters, and memory (note the *private*
   bytes — the matrices live in shared segments);
5. stop the cluster: workers drain and exit, segments are unlinked.

Run:  python examples/cluster_demo.py
"""

import asyncio

from repro import ShortestPathIndex
from repro.cluster import ClusterFrontend, loadgen
from repro.cluster.protocol import read_frame, write_frame
from repro.serve.shm import list_segments
from repro.workloads.generators import random_disjoint_rects


async def rpc(host, port, *msgs):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for m in msgs:
            await write_frame(writer, m)
        return [await read_frame(reader) for _ in msgs]
    finally:
        writer.close()
        await writer.wait_closed()


async def main() -> None:
    # -- 1. two scenes, two workers, shared-memory snapshots ------------
    campus = random_disjoint_rects(32, seed=11)
    depot = random_disjoint_rects(24, seed=12)
    idx = ShortestPathIndex.build(campus)  # built once, in the front-end
    async with ClusterFrontend(
        {"campus": {"index": idx}, "depot": {"obstacles": depot}},
        workers=2,
        batch_window_ms=1.0,
    ) as fe:
        print(f"cluster on {fe.host}:{fe.port}; scene -> worker: {fe.assignment}")
        print(f"shared segments: {list_segments()}")

        # -- 2. speak the protocol directly -----------------------------
        vs = idx.vertices()
        p, q = vs[0], vs[-1]
        resps = await rpc(
            fe.host,
            fe.port,
            {"id": 0, "op": "length", "scene": "campus", "p": list(p), "q": list(q)},
            {"id": 1, "op": "lengths", "scene": "campus",
             "pairs": [[list(vs[i]), list(vs[-1 - i])] for i in range(4)]},
            {"id": 2, "op": "path", "scene": "campus", "p": list(p), "q": list(q)},
            {"id": 3, "op": "length", "scene": "nowhere", "p": [0, 0], "q": [1, 1]},
        )
        assert resps[0]["result"] == idx.length(p, q)
        print(f"length {p} -> {q} = {resps[0]['result']}")
        print(f"bulk of 4 lengths: {resps[1]['result']}")
        print(f"path has {len(resps[2]['result']) - 1} segments")
        print(f"unknown scene answers one line: {resps[3]['error']!r}")

        # -- 3. closed-loop load with a percentile report ----------------
        report = await loadgen.run(
            fe.host, fe.port, mode="closed", n_requests=400, conns=8, seed=5
        )
        s = report.summary()
        lat = s["latency"]
        print(
            f"loadgen: {s['ok']} ok / {s['errors']} errors / {s['shed']} shed "
            f"at {s['qps']:,.0f} req/s; "
            f"p50 {lat['p50_ms']:.2f} ms, p95 {lat['p95_ms']:.2f} ms, "
            f"p99 {lat['p99_ms']:.2f} ms"
        )

        # -- 4. cluster-wide stats --------------------------------------
        (stats,) = await rpc(fe.host, fe.port, {"id": 9, "op": "stats"})
        for wid, w in sorted(stats["result"]["workers"].items()):
            mem = w["memory"]
            print(
                f"worker {wid}: {w['requests']} requests, "
                f"service p99 {w['service']['p99_ms']:.2f} ms, "
                f"batches {w['batch_size_hist']}, "
                f"private {mem['private_bytes'] / 2**20:.1f} MB "
                f"(matrices are shared, not copied)"
            )

    # -- 5. clean shutdown ----------------------------------------------
    print(f"after stop, shared segments: {list_segments()}")


if __name__ == "__main__":
    asyncio.run(main())
