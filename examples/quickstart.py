#!/usr/bin/env python3
"""Quickstart: build the structure, query lengths, report a path.

Reproduces, end to end, what the paper's data structure offers:
O(1) vertex-pair lengths, O(log n) arbitrary-point lengths, and actual
shortest-path reporting — on a small scene you can eyeball.

Run:  python examples/quickstart.py
"""

from repro import Rect, ShortestPathIndex
from repro.core.baseline import path_length
from repro.viz.ascii import render_scene


def main() -> None:
    # A little courtyard of five obstacles.
    rects = [
        Rect(4, 4, 10, 9),
        Rect(14, 12, 24, 18),
        Rect(23, 5, 34, 12),
        Rect(6, 17, 14, 27),
        Rect(28, 21, 36, 26),
    ]

    # Build on the simulated CREW-PRAM (the paper's §5/§6 engine).
    idx = ShortestPathIndex.build(rects, engine="parallel")
    t, w = idx.build_stats()
    print(f"built index over {len(idx.vertices())} vertices "
          f"(simulated parallel time={t}, work={w})\n")

    # O(1) vertex-to-vertex length queries.
    a, b = rects[0].sw, rects[4].ne  # (4,4) -> (36,26)
    print(f"length {a} -> {b}: {idx.length(a, b)}  (O(1) matrix lookup)")

    # O(log n) arbitrary-point queries (§6.4).
    p, q = (0, 0), (38, 28)
    print(f"length {p} -> {q}: {idx.length(p, q)}  (O(log n) ray shoots)")

    # Actual shortest path (§8).
    path = idx.shortest_path(a, b)
    print(f"path   {a} -> {b}: {path}")
    assert path_length(path) == idx.length(a, b)

    print()
    print(render_scene(rects, paths=[path], points=[(a, "A"), (b, "B")],
                       title="shortest A->B path (*) among obstacles (#)"))


if __name__ == "__main__":
    main()
