#!/usr/bin/env python3
"""Urban transportation with a large city boundary (§7, |P| ≫ n).

A convex city limit polygon with hundreds of boundary vertices surrounds a
handful of obstacle blocks.  Materialising the full boundary-to-boundary
matrix would cost Θ(N²); the §7 implicit structure registers only O(n)
projection points and answers boundary queries through them.

Run:  python examples/city_blocks.py
"""

import time

from repro import Rect
from repro.core.baseline import GridOracle
from repro.core.implicit import ImplicitBoundaryStructure
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects, staircase_container


def main() -> None:
    blocks = random_disjoint_rects(12, seed=11)
    city = staircase_container(blocks, steps=60, margin=140)
    n_boundary = city.size
    print(f"{len(blocks)} obstacle blocks, city boundary has {n_boundary} vertices")

    pram = PRAM("city")
    t0 = time.perf_counter()
    implicit = ImplicitBoundaryStructure(city, blocks, pram)
    t_implicit = time.perf_counter() - t0
    print(f"implicit structure: {implicit.registered_points} registered points, "
          f"built in {t_implicit * 1e3:.1f} ms (independent of N)")

    gates = city.vertices_loop()[:: max(1, n_boundary // 8)]
    depots = [blocks[0].sw, blocks[5].ne, blocks[9].nw]

    print("\ngate-to-depot travel costs:")
    oracle = GridOracle(blocks, gates + depots)
    for g in gates[:6]:
        row = []
        for d in depots:
            v = implicit.length(g, d)
            assert v == oracle.dist(g, d)  # exactness check against Dijkstra
            row.append(v)
        print(f"  gate {str(g):>12}: " + "  ".join(f"{c:6}" for c in row))

    print("\ngate-to-gate (boundary-to-boundary, never materialised):")
    for i in range(0, len(gates) - 1, 2):
        p, q = gates[i], gates[i + 1]
        v = implicit.length(p, q)
        assert v == oracle.dist(p, q)
        print(f"  {str(p):>12} -> {str(q):>12}: {v}")

    # naive comparison: a grid oracle over every boundary vertex scales
    # with N², the implicit structure does not
    t0 = time.perf_counter()
    naive = GridOracle(blocks, city.vertices_loop() + depots)
    naive.dist(city.vertices_loop()[0], depots[0])
    t_naive = time.perf_counter() - t0
    print(f"\nnaive grid over all {n_boundary} boundary vertices: "
          f"{t_naive * 1e3:.1f} ms for the FIRST query "
          f"(implicit answered all of the above in {t_implicit * 1e3:.1f} ms total)")


if __name__ == "__main__":
    main()
