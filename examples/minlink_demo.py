#!/usr/bin/env python3
"""Minimum-link and bicriteria (length, bends) queries, end to end.

Three blocks make length and bends genuinely compete: ``S`` sits on a
tall tower (no cheap drop), ``T`` on a low flat block, and a mid block
between them whose bottom is one unit above the flat block's.  Flying
over everything is long but nearly straight; threading under the mid
block and over the flat one is shortest but weaves.  The demo walks the
whole query family:

1. min-link — ``min_links`` / ``min_link_path`` give the fewest maximal
   segments and a witness polyline; ``shortest_path`` the other extreme;
2. bicriteria — ``bicriteria`` returns the full Pareto frontier of
   (length, bends), here three points, with one witness path per point;
   its ends are exactly the two extremes above;
3. batched gathers — ``link_counts`` / ``paretos`` share one solver run
   per distinct endpoint (see BENCH_links.json for the throughput gap);
4. serving — a ``--links`` snapshot (format v4) persists the all-pairs
   link matrix, advertises its verbs in the header, and answers
   ``minlink`` / ``pareto`` requests through the coalescing QueryServer.

Run:  python examples/minlink_demo.py
"""

import tempfile
from pathlib import Path

from repro import Rect, ShortestPathIndex
from repro.serve import QueryServer, Request, SceneStore, load, read_header, save
from repro.viz.ascii import render_scene


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-links-"))

    blocks = [
        Rect(0, 0, 10, 20),    # the tower S stands on
        Rect(40, 15, 46, 30),  # mid block: tall, bottom at y=15
        Rect(54, 14, 70, 22),  # flat block T stands on, bottom at y=14
    ]
    idx = ShortestPathIndex.build(blocks, engine="parallel")
    s, t = (0, 20), (70, 22)

    # -- 1. the two extremes -------------------------------------------
    links = idx.min_links(s, t)
    straightest = idx.min_link_path(s, t)
    shortest = idx.shortest_path(s, t)
    print(f"shortest   {s} -> {t}: length {idx.length(s, t)}")
    print(f"min-link   {s} -> {t}: {links} links ({max(links - 1, 0)} bends)")
    print(render_scene(blocks, paths=[shortest, straightest],
                       points=[(s, "S"), (t, "T")],
                       title="short-but-weaving vs long-but-straight"))

    # -- 2. the whole frontier between them -----------------------------
    frontier = idx.bicriteria(s, t)
    print("Pareto frontier (length, bends), one witness each:")
    for length, bends, path in frontier:
        print(f"  length {length:5.1f}  bends {bends}  witness {len(path)} pts")
    # sorted by increasing bends / strictly decreasing length, so the two
    # ends of the frontier are exactly the extremes from step 1
    assert frontier[0][1] == max(links - 1, 0)
    assert frontier[-1][0] == idx.length(s, t)

    # -- 3. batched gathers ---------------------------------------------
    vs = idx.vertices()
    pairs = [(vs[i], vs[-1 - i]) for i in range(len(vs) // 2)]
    counts = idx.link_counts(pairs)
    fronts = idx.paretos(pairs)
    print(f"{len(pairs)} vertex pairs gathered: "
          f"link counts {sorted(set(counts))}, "
          f"frontier sizes {sorted(set(len(f) for f in fronts))}")

    # -- 4. snapshot v4 with the link matrix + served verbs -------------
    snap = save(idx, workdir / "blocks.rsp", include_links=True)
    header = read_header(snap)
    print(f"snapshot v{header['version']}: verbs {header['verbs']}, "
          f"{snap.stat().st_size:,} bytes")
    reloaded = load(snap)
    assert reloaded.min_links(s, t) == links  # link-matrix fast path

    store = SceneStore()
    store.add_snapshot("blocks", snap)
    server = QueryServer(store)
    out = server.submit([Request("blocks", s, t, op="minlink"),
                         Request("blocks", s, t, op="pareto")])
    print(f"server: minlink={out[0]}, pareto={out[1]}")


if __name__ == "__main__":
    main()
