#!/usr/bin/env python3
"""Tour of the simulated CREW-PRAM (the paper's machine model).

Shows the metered primitives, a CREW violation being caught, and Brent's
theorem (Theorem 1) turning one (time, work) profile into running times
for any processor count — which is how every processor bound in the paper
should be read.

Run:  python examples/pram_playground.py
"""

import operator

from repro.errors import ConcurrentWriteError
from repro.pram import (
    PRAM,
    SharedArray,
    brent_time,
    parallel_sort,
    scan,
    speedup_table,
)
from repro.workloads.generators import random_disjoint_rects


def main() -> None:
    pram = PRAM("demo")
    values = list(range(1000, 0, -1))

    parallel_sort(values, pram=pram)
    print(f"Cole-style sort of 1000 items:   time={pram.time:>3}, work={pram.work}")

    snap = pram.snapshot()
    scan(values, operator.add, 0, pram=pram)
    dt, dw = pram.since(snap)
    print(f"parallel prefix over 1000 items: time={dt:>3}, work={dw}")

    # CREW means concurrent reads are fine, concurrent writes are not.
    crew = PRAM("crew", detect_conflicts=True)
    arr = SharedArray(crew, 8)
    crew.step(2)
    arr[3] = "first write"
    try:
        arr[3] = "second write, same step"
    except ConcurrentWriteError as exc:
        print(f"\nCREW checker caught: {exc}")

    # Brent's theorem on a real build profile.
    from repro.core.allpairs import ParallelEngine

    rects = random_disjoint_rects(48, seed=3)
    build_pram = PRAM("build")
    ParallelEngine(rects, [], build_pram, leaf_size=6).build()
    t, w = build_pram.time, build_pram.work
    print(f"\n§6 build on n={len(rects)}: T∞={t}, W={w}")
    print(f"{'p':>8} {'T_p':>10} {'speedup':>9} {'efficiency':>10}")
    for p, tp, s, e in speedup_table(w, t, [1, 4, 16, 64, 256, 1024, 4096]):
        print(f"{p:>8} {tp:>10} {s:>9.1f} {e:>10.2f}")
    n = len(rects)
    paper_p = max(1, (n * n) // max(1, t))
    print(f"\npaper-style processor count W/T∞ ≈ {w // max(1, t)} "
          f"(the paper's O(n²) would be ~{n * n})")
    print(f"T at that p: {brent_time(w, t, max(1, w // max(1, t)))} ≈ 2·T∞ = {2 * t}")
    del paper_p


if __name__ == "__main__":
    main()
