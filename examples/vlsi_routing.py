#!/usr/bin/env python3
"""Wire-length estimation among macro blocks (the paper's VLSI motivation).

The introduction motivates rectilinear shortest paths with wire layout and
circuit design: wires run in horizontal/vertical tracks and must route
around macro blocks.  This example places a perturbed grid of macros,
builds the all-pairs structure once, and then answers *every* pin-to-pin
detour query in O(1) — exactly the use case for an all-pairs (rather than
single-source) structure.

Run:  python examples/vlsi_routing.py
"""

from repro import ShortestPathIndex, dist
from repro.pram import PRAM, brent_time
from repro.workloads.generators import random_disjoint_rects


def main() -> None:
    macros = random_disjoint_rects(40, seed=2026, mode="grid")
    pram = PRAM("vlsi")
    idx = ShortestPathIndex.build(macros, engine="parallel", pram=pram)
    t, w = idx.build_stats()
    print(f"{len(macros)} macros, {len(idx.vertices())} pins")
    print(f"simulated build: T∞={t} steps, W={w} ops")
    for p in (64, 1024, 16384):
        print(f"  with p={p:>6} processors: T_p={brent_time(w, t, p)} (Brent)")

    # Pin-to-pin detour report: how much longer than Manhattan does each
    # net get because of the macros in between?
    pins = idx.vertices()
    worst: list[tuple[float, tuple, tuple]] = []
    total_detour = 0
    pairs = 0
    for i in range(0, len(pins), 7):
        for j in range(i + 1, len(pins), 11):
            a, b = pins[i], pins[j]
            routed = idx.length(a, b)
            manhattan = dist(a, b)
            detour = routed - manhattan
            total_detour += detour
            pairs += 1
            worst.append((detour, a, b))
    worst.sort(reverse=True)
    print(f"\nsampled {pairs} nets; mean detour {total_detour / pairs:.2f} units")
    print("five worst nets (detour, pinA, pinB):")
    for detour, a, b in worst[:5]:
        print(f"  +{detour:<6} {a} -> {b}")

    # Route the worst net for inspection.
    _, a, b = worst[0]
    path = idx.shortest_path(a, b)
    print(f"\nworst net routes through {len(path) - 1} segments: {path}")


if __name__ == "__main__":
    main()
