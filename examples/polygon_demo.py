#!/usr/bin/env python3
"""Polygonal-obstacle demo: decomposition, solid semantics, serving.

Walks the polygon pipeline end to end:

1. build — a plus, a spiral, and a staircase band go straight into
   ``ShortestPathIndex.build`` next to plain rectangles; each polygon is
   decomposed into maximal tiles plus interior seams;
2. solid semantics — the famous shortcut through the plus's decomposition
   seams is blocked: the reported path rounds the arm and a seam-interior
   query point is rejected;
3. serving — the scene snapshots to a format-v2 ``.rsp`` artifact,
   reloads in milliseconds, and answers batched queries through the
   ``QueryServer`` exactly like any rectangle scene.

Run:  python examples/polygon_demo.py
"""

import tempfile
import time
from pathlib import Path

from repro import QueryError, Rect, ShortestPathIndex
from repro.serve import QueryServer, Request, SceneStore, load, read_header, save
from repro.viz.ascii import render_scene
from repro.workloads.generators import (
    plus_polygon,
    spiral_polygon,
    staircase_polygon,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-poly-"))

    # -- 1. mixed obstacles: polygons decompose under the hood ----------
    obstacles = [
        plus_polygon(10, 10, 6, 2),
        spiral_polygon(24, 2, 2),
        staircase_polygon(50, 2, 3, 4, 3, 5),
        Rect(2, 24, 8, 28),
        Rect(58, 24, 64, 30),
    ]
    idx = ShortestPathIndex.build(obstacles, engine="parallel")
    print(
        f"{len(obstacles)} obstacles -> {len(idx.rects)} engine rects, "
        f"{len(idx.seams)} interior seams"
    )

    # -- 2. solid semantics: no shortcut through a polygon ---------------
    a, b = (12, 6), (12, 14)  # straight through the plus's east arm: 8
    d = idx.length(a, b)
    path = idx.shortest_path(a, b)
    print(f"crossing the plus {a} -> {b}: length {d} "
          f"(free-space L1 would be {abs(a[0]-b[0]) + abs(a[1]-b[1])})")
    try:
        idx.length((10, 6), b)  # (10, 6) sits on a decomposition seam
    except QueryError as exc:
        print(f"seam-interior query rejected: {exc}")
    print(render_scene(obstacles, paths=[path],
                       points=[(a, "A"), (b, "B")], title="polygon scene"))

    # -- 3. snapshot v2 + batched serving --------------------------------
    snap = save(idx, workdir / "poly.rsp")
    t0 = time.perf_counter()
    reloaded = load(snap)
    load_ms = (time.perf_counter() - t0) * 1e3
    header = read_header(snap)
    print(f"snapshot v{header['version']}: {snap.stat().st_size:,} bytes, "
          f"{header['n_polygons']} polygons persisted, reloaded in {load_ms:.1f} ms")
    assert reloaded.length(a, b) == d

    store = SceneStore()
    store.add_snapshot("poly", snap)
    server = QueryServer(store)
    vs = idx.vertices()
    reqs = [Request("poly", vs[i], vs[-1 - i]) for i in range(0, len(vs) // 2, 2)]
    out = server.submit(reqs)
    print(f"server answered {len(out)} coalesced requests; stats {server.stats()}")


if __name__ == "__main__":
    main()
